// Package polytab catalogs irreducible polynomials over GF(2) and provides
// search and cost utilities.
//
// It carries the two polynomial families the paper evaluates:
//
//   - the NIST-recommended polynomials used for Tables I–III (FIPS 186 /
//     "Recommended elliptic curves for federal government use", 1999), and
//   - Scott's architecture-optimal GF(2^233) polynomials used for Table IV
//     and Figure 4 (optimal for Intel Pentium, ARM and MSP430).
//
// It also implements the lowest-weight trinomial/pentanomial search the
// paper's Section II-D discusses (a pentanomial is chosen only when no
// irreducible trinomial exists) and the reduction XOR-cost model used to
// compare polynomial choices in Figure 1.
package polytab

import (
	"fmt"

	"github.com/galoisfield/gfre/internal/gf2poly"
)

// NIST maps a field size m to the NIST-recommended irreducible polynomial
// for GF(2^m), exactly the set used in the paper's Tables I and II.
var NIST = map[int]gf2poly.Poly{
	64:  gf2poly.MustParse("x^64+x^21+x^19+x^4+1"),
	96:  gf2poly.MustParse("x^96+x^44+x^7+x^2+1"),
	163: gf2poly.MustParse("x^163+x^80+x^47+x^9+1"),
	233: gf2poly.MustParse("x^233+x^74+1"),
	283: gf2poly.MustParse("x^283+x^12+x^7+x^5+1"),
	409: gf2poly.MustParse("x^409+x^87+1"),
	571: gf2poly.MustParse("x^571+x^10+x^5+x^2+1"),
}

// NISTSizes lists the bit widths of the NIST table in ascending order.
var NISTSizes = []int{64, 96, 163, 233, 283, 409, 571}

// ArchPoly is an irreducible polynomial recommended as optimal for a
// particular microprocessor architecture (Table IV; from M. Scott, "Optimal
// irreducible polynomials for GF(2^m) arithmetic", 2007).
type ArchPoly struct {
	Arch string
	P    gf2poly.Poly
}

// Arch233 lists the GF(2^233) polynomials of Table IV in the paper's row
// order: Intel-Pentium, ARM, MSP430 and the NIST recommendation.
var Arch233 = []ArchPoly{
	{"Intel-Pentium", gf2poly.MustParse("x^233+x^201+x^105+x^9+1")},
	{"ARM", gf2poly.MustParse("x^233+x^159+1")},
	{"MSP430", gf2poly.MustParse("x^233+x^185+x^121+x^105+1")},
	{"NIST-recommended", gf2poly.MustParse("x^233+x^74+1")},
}

// Trinomial searches for an irreducible trinomial x^m + x^a + 1 with the
// smallest middle exponent a in [1, m-1]. It returns false when none exists
// (e.g. whenever m ≡ 0 mod 8).
func Trinomial(m int) (gf2poly.Poly, bool) {
	if m < 2 {
		return gf2poly.Poly{}, false
	}
	for a := 1; a < m; a++ {
		p := gf2poly.FromTerms(m, a, 0)
		if p.Irreducible() {
			return p, true
		}
	}
	return gf2poly.Poly{}, false
}

// Pentanomial searches for an irreducible pentanomial
// x^m + x^a + x^b + x^c + 1 with m > a > b > c >= 1, scanning exponents in
// lexicographically increasing (a, b, c) order so the result is
// deterministic and low-weight-biased. It returns false when none exists in
// the searched range (no such m is known for m >= 4).
func Pentanomial(m int) (gf2poly.Poly, bool) {
	if m < 4 {
		return gf2poly.Poly{}, false
	}
	for a := 3; a < m; a++ {
		for b := 2; b < a; b++ {
			for c := 1; c < b; c++ {
				p := gf2poly.FromTerms(m, a, b, c, 0)
				if p.Irreducible() {
					return p, true
				}
			}
		}
	}
	return gf2poly.Poly{}, false
}

// Default returns an irreducible polynomial of degree m following the
// policy the paper cites from NIST: use the registered NIST polynomial if m
// is a NIST size, otherwise prefer an irreducible trinomial and fall back to
// a pentanomial only when no trinomial exists.
func Default(m int) (gf2poly.Poly, error) {
	if p, ok := NIST[m]; ok {
		return p, nil
	}
	if p, ok := Trinomial(m); ok {
		return p, nil
	}
	if p, ok := Pentanomial(m); ok {
		return p, nil
	}
	return gf2poly.Poly{}, fmt.Errorf("polytab: no irreducible trinomial or pentanomial of degree %d found", m)
}

// ReductionRows returns, for k = m..2m-2, the bit vector x^k mod P(x) as a
// polynomial of degree < m. Row k (indexed k-m) tells which output columns
// the out-field partial-product sum s_k folds into — the rows of the
// reduction tables in Figure 1 of the paper.
func ReductionRows(p gf2poly.Poly) []gf2poly.Poly {
	m := p.Deg()
	if m < 1 {
		panic("polytab: reduction rows need deg >= 1")
	}
	rows := make([]gf2poly.Poly, m-1)
	// x^m mod P = P - x^m = P'(x); subsequent rows multiply by x mod P.
	r := p.Add(gf2poly.Monomial(m))
	for k := 0; k < m-1; k++ {
		rows[k] = r
		r = r.Shl(1)
		if r.Deg() == m {
			r = r.Add(p)
		}
	}
	return rows
}

// ReductionXORCount counts the XOR operations required to fold the
// out-field partial-product sums s_m..s_{2m-2} into the m output columns:
// the number of entries in each column of the Figure 1 table minus one,
// summed over columns. For Figure 1 this yields 9 for P1 = x^4+x^3+1 and 6
// for P2 = x^4+x+1.
func ReductionXORCount(p gf2poly.Poly) int {
	m := p.Deg()
	colEntries := make([]int, m) // entries per column, counting s_0..s_{m-1}.
	for i := range colEntries {
		colEntries[i] = 1
	}
	for _, row := range ReductionRows(p) {
		for i := 0; i < m; i++ {
			if row.Coeff(i) == 1 {
				colEntries[i]++
			}
		}
	}
	xors := 0
	for _, n := range colEntries {
		xors += n - 1
	}
	return xors
}

// CountIrreducible returns the number of monic irreducible polynomials of
// degree m over GF(2), by the necklace-counting formula
// (1/m)·Σ_{d|m} μ(d)·2^(m/d). Supported for m in [1, 62] (the count must
// fit in uint64). Used as an independent cross-check of the searching and
// factoring code.
func CountIrreducible(m int) (uint64, error) {
	if m < 1 || m > 62 {
		return 0, fmt.Errorf("polytab: CountIrreducible supports 1 <= m <= 62, have %d", m)
	}
	var sum int64
	for d := 1; d <= m; d++ {
		if m%d != 0 {
			continue
		}
		mu := moebius(d)
		if mu == 0 {
			continue
		}
		sum += int64(mu) * int64(uint64(1)<<uint(m/d))
	}
	return uint64(sum) / uint64(m), nil
}

// moebius returns the Möbius function μ(n) for n >= 1.
func moebius(n int) int {
	if n == 1 {
		return 1
	}
	mu := 1
	for p := 2; p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		n /= p
		if n%p == 0 {
			return 0 // squared prime factor
		}
		mu = -mu
	}
	if n > 1 {
		mu = -mu
	}
	return mu
}
