package polytab

import (
	"fmt"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2poly"
)

func TestNISTTableIrreducible(t *testing.T) {
	for _, m := range NISTSizes {
		p, ok := NIST[m]
		if !ok {
			t.Fatalf("NIST table missing m=%d", m)
		}
		if p.Deg() != m {
			t.Errorf("NIST[%d] has degree %d", m, p.Deg())
		}
		if !p.Irreducible() {
			t.Errorf("NIST[%d] = %v is not irreducible", m, p)
		}
		w := p.Weight()
		if w != 3 && w != 5 {
			t.Errorf("NIST[%d] weight %d; want trinomial or pentanomial", m, w)
		}
	}
}

func TestArch233Irreducible(t *testing.T) {
	if len(Arch233) != 4 {
		t.Fatalf("Arch233 has %d entries, want 4", len(Arch233))
	}
	for _, ap := range Arch233 {
		if ap.P.Deg() != 233 {
			t.Errorf("%s polynomial degree %d", ap.Arch, ap.P.Deg())
		}
		if !ap.P.Irreducible() {
			t.Errorf("%s polynomial %v is not irreducible", ap.Arch, ap.P)
		}
	}
	// The paper notes trinomials (ARM, NIST) vs pentanomials (Pentium,
	// MSP430): weight distribution must match.
	weights := map[string]int{"Intel-Pentium": 5, "ARM": 3, "MSP430": 5, "NIST-recommended": 3}
	for _, ap := range Arch233 {
		if ap.P.Weight() != weights[ap.Arch] {
			t.Errorf("%s weight = %d, want %d", ap.Arch, ap.P.Weight(), weights[ap.Arch])
		}
	}
}

func TestTrinomialSearch(t *testing.T) {
	// Known smallest irreducible trinomials: x^2+x+1, x^3+x+1, x^4+x+1,
	// x^7+x+1, x^15+x+1, x^17+x^3+1, x^233+x^74+1.
	cases := map[int]string{
		2:   "x^2+x+1",
		3:   "x^3+x+1",
		4:   "x^4+x+1",
		7:   "x^7+x+1",
		15:  "x^15+x+1",
		17:  "x^17+x^3+1",
		233: "x^233+x^74+1",
	}
	for m, want := range cases {
		p, ok := Trinomial(m)
		if !ok {
			t.Fatalf("Trinomial(%d) not found", m)
		}
		if p.String() != want {
			t.Errorf("Trinomial(%d) = %v, want %s", m, p, want)
		}
	}
}

func TestTrinomialNonexistent(t *testing.T) {
	// No irreducible trinomial exists when m is a multiple of 8 (the
	// motivation for pentanomials in the NIST list, per Section II-D).
	for _, m := range []int{8, 16, 24, 32, 64} {
		if p, ok := Trinomial(m); ok {
			t.Errorf("Trinomial(%d) = %v; none should exist", m, p)
		}
	}
	if _, ok := Trinomial(1); ok {
		t.Error("Trinomial(1) should not exist")
	}
}

func TestPentanomialSearch(t *testing.T) {
	for _, m := range []int{8, 16, 32, 64, 128} {
		p, ok := Pentanomial(m)
		if !ok {
			t.Fatalf("Pentanomial(%d) not found", m)
		}
		if p.Deg() != m || p.Weight() != 5 {
			t.Errorf("Pentanomial(%d) = %v (deg %d, weight %d)", m, p, p.Deg(), p.Weight())
		}
		if !p.Irreducible() {
			t.Errorf("Pentanomial(%d) = %v not irreducible", m, p)
		}
	}
	if _, ok := Pentanomial(3); ok {
		t.Error("Pentanomial(3) should not exist")
	}
}

func TestPentanomialAES(t *testing.T) {
	// The AES field polynomial x^8+x^4+x^3+x+1 is the lexicographically
	// first irreducible pentanomial of degree 8 under our scan order.
	p, ok := Pentanomial(8)
	if !ok || p.String() != "x^8+x^4+x^3+x+1" {
		t.Errorf("Pentanomial(8) = %v, want AES polynomial", p)
	}
}

func TestDefaultPolicy(t *testing.T) {
	// NIST sizes come from the table even when a smaller trinomial exists.
	p, err := Default(233)
	if err != nil || !p.Equal(NIST[233]) {
		t.Errorf("Default(233) = %v, %v", p, err)
	}
	// Non-NIST size with a trinomial.
	p, err = Default(7)
	if err != nil || p.String() != "x^7+x+1" {
		t.Errorf("Default(7) = %v, %v", p, err)
	}
	// Non-NIST size requiring a pentanomial.
	p, err = Default(8)
	if err != nil || p.Weight() != 5 {
		t.Errorf("Default(8) = %v, %v", p, err)
	}
	if _, err = Default(1); err == nil {
		t.Error("Default(1) should fail")
	}
	// Every Default result must be irreducible of the right degree.
	for m := 2; m <= 64; m++ {
		p, err := Default(m)
		if err != nil {
			t.Fatalf("Default(%d): %v", m, err)
		}
		if p.Deg() != m || !p.Irreducible() {
			t.Errorf("Default(%d) = %v", m, p)
		}
	}
}

func TestReductionRowsFigure1(t *testing.T) {
	// Figure 1, P2 = x^4+x+1: s4 folds into z0, z1; s5 into z1, z2;
	// s6 into z2, z3.
	rows := ReductionRows(gf2poly.MustParse("x^4+x+1"))
	want := []string{"x+1", "x^2+x", "x^3+x^2"}
	for i, r := range rows {
		if r.String() != want[i] {
			t.Errorf("P2 row s%d = %v, want %s", i+4, r, want[i])
		}
	}
	// Figure 1, P1 = x^4+x^3+1: s4 -> z3,z0; s5 -> z3,z1,z0; s6 -> z3,z2,z1,z0.
	rows = ReductionRows(gf2poly.MustParse("x^4+x^3+1"))
	want = []string{"x^3+1", "x^3+x+1", "x^3+x^2+x+1"}
	for i, r := range rows {
		if r.String() != want[i] {
			t.Errorf("P1 row s%d = %v, want %s", i+4, r, want[i])
		}
	}
}

func TestSectionIIDXORCounts(t *testing.T) {
	// Section II-D: "the number of XORs using P1(x) is 3+1+2+3=9; and using
	// P2(x), the number of XORs is 1+2+2+1=6."
	if got := ReductionXORCount(gf2poly.MustParse("x^4+x^3+1")); got != 9 {
		t.Errorf("XOR count for x^4+x^3+1 = %d, want 9", got)
	}
	if got := ReductionXORCount(gf2poly.MustParse("x^4+x+1")); got != 6 {
		t.Errorf("XOR count for x^4+x+1 = %d, want 6", got)
	}
}

func TestReductionXORCountOrdersTableIV(t *testing.T) {
	// Trinomials must cost less than pentanomials at the same m; this is
	// the structural reason behind the Table IV runtime spread.
	cost := map[string]int{}
	for _, ap := range Arch233 {
		cost[ap.Arch] = ReductionXORCount(ap.P)
	}
	if !(cost["ARM"] < cost["Intel-Pentium"] && cost["ARM"] < cost["MSP430"]) {
		t.Errorf("ARM trinomial should be cheapest: %v", cost)
	}
	if !(cost["NIST-recommended"] < cost["Intel-Pentium"] && cost["NIST-recommended"] < cost["MSP430"]) {
		t.Errorf("NIST trinomial should beat pentanomials: %v", cost)
	}
}

func TestReductionRowsMatchExpMod(t *testing.T) {
	for _, m := range []int{5, 8, 16, 33} {
		p, err := Default(m)
		if err != nil {
			t.Fatal(err)
		}
		rows := ReductionRows(p)
		if len(rows) != m-1 {
			t.Fatalf("m=%d: %d rows", m, len(rows))
		}
		for k, row := range rows {
			want := gf2poly.Monomial(m + k).Mod(p)
			if !row.Equal(want) {
				t.Errorf("m=%d: row for x^%d = %v, want %v", m, m+k, row, want)
			}
		}
	}
}

func TestCountIrreducibleSmallExhaustive(t *testing.T) {
	// Compare the necklace formula against brute-force enumeration with the
	// Rabin test for degrees 1..12.
	for m := 1; m <= 12; m++ {
		want := uint64(0)
		for v := uint64(1) << uint(m); v < 1<<uint(m+1); v++ {
			if gf2poly.FromUint64(v).Irreducible() {
				want++
			}
		}
		got, err := CountIrreducible(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("m=%d: formula says %d, enumeration finds %d", m, got, want)
		}
	}
}

func TestCountIrreducibleKnownValues(t *testing.T) {
	// OEIS A001037: 2, 1, 2, 3, 6, 9, 18, 30, 56, 99 for m = 1..10.
	want := []uint64{2, 1, 2, 3, 6, 9, 18, 30, 56, 99}
	for i, w := range want {
		got, err := CountIrreducible(i + 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("m=%d: %d, want %d", i+1, got, w)
		}
	}
	if _, err := CountIrreducible(0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := CountIrreducible(63); err == nil {
		t.Error("m=63 should fail")
	}
}

// TestNISTTableBerlekampCrossCheck re-validates every standardized
// polynomial with the independent Berlekamp nullity test: the two
// irreducibility algorithms share no code path, so agreement on the full
// table (up to degree 571) is a strong differential check. A one-bit
// corruption of each polynomial must also be flagged by both.
func TestNISTTableBerlekampCrossCheck(t *testing.T) {
	check := func(name string, p gf2poly.Poly) {
		if !p.IrreducibleBerlekamp() {
			t.Errorf("%s = %v: Berlekamp disagrees with Rabin on irreducibility", name, p)
		}
		// Corrupt the lowest interior term; the damaged polynomial must not
		// pass either test pretending to be the standardized one.
		terms := p.Terms()
		if len(terms) < 3 {
			t.Fatalf("%s = %v: not a standards-shaped polynomial", name, p)
		}
		bad := p.Add(gf2poly.Monomial(terms[1] + 1))
		if bad.Irreducible() != bad.IrreducibleBerlekamp() {
			t.Errorf("%s: algorithms disagree on corrupted %v", name, bad)
		}
	}
	for _, m := range NISTSizes {
		check(fmt.Sprintf("NIST[%d]", m), NIST[m])
	}
	for _, ap := range Arch233 {
		check("Arch233/"+ap.Arch, ap.P)
	}
}
