// Package ecc implements elliptic curve arithmetic over binary extension
// fields GF(2^m) — the application domain that motivates the paper
// (ECC/AES hardware uses GF(2^m) multipliers).
//
// Curves are non-supersingular short Weierstrass binary curves
//
//	y² + x·y = x³ + a·x² + b,  a, b ∈ GF(2^m), b ≠ 0
//
// in affine coordinates, the form used by the NIST B-/K- curves. The
// examples/ecc program builds a curve on top of a field whose irreducible
// polynomial was recovered from a gate-level multiplier by package extract —
// demonstrating that the reverse-engineered P(x) is sufficient to rebuild
// the full cryptosystem the hardware implements.
package ecc

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
)

// Point is an affine curve point; Inf marks the point at infinity (the
// group identity).
type Point struct {
	X, Y gf2poly.Poly
	Inf  bool
}

// Infinity returns the identity point.
func Infinity() Point { return Point{Inf: true} }

// Equal reports whether two points are the same.
func (p Point) Equal(q Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// String renders the point for diagnostics.
func (p Point) String() string {
	if p.Inf {
		return "∞"
	}
	return fmt.Sprintf("(%v, %v)", p.X, p.Y)
}

// Curve is y² + xy = x³ + ax² + b over a binary field.
type Curve struct {
	F    *gf2m.Field
	A, B gf2poly.Poly
}

// NewCurve validates the parameters (b ≠ 0 keeps the curve non-singular).
func NewCurve(f *gf2m.Field, a, b gf2poly.Poly) (*Curve, error) {
	a, b = f.Reduce(a), f.Reduce(b)
	if b.IsZero() {
		return nil, fmt.Errorf("ecc: b must be nonzero (singular curve)")
	}
	return &Curve{F: f, A: a, B: b}, nil
}

// IsOnCurve reports whether p satisfies the curve equation.
func (c *Curve) IsOnCurve(p Point) bool {
	if p.Inf {
		return true
	}
	f := c.F
	lhs := f.Add(f.Square(p.Y), f.Mul(p.X, p.Y))
	rhs := f.Add(f.Add(f.Mul(f.Square(p.X), p.X), f.Mul(c.A, f.Square(p.X))), c.B)
	return lhs.Equal(rhs)
}

// Neg returns -p = (x, x+y).
func (c *Curve) Neg(p Point) Point {
	if p.Inf {
		return p
	}
	return Point{X: p.X, Y: c.F.Add(p.X, p.Y)}
}

// Add returns p + q using the binary-curve affine formulas.
func (c *Curve) Add(p, q Point) Point {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	f := c.F
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return c.Double(p)
		}
		// q = -p.
		return Infinity()
	}
	// λ = (y1+y2)/(x1+x2)
	lam, err := f.Div(f.Add(p.Y, q.Y), f.Add(p.X, q.X))
	if err != nil {
		panic("ecc: unreachable division by zero in Add")
	}
	// x3 = λ² + λ + x1 + x2 + a
	x3 := f.Add(f.Add(f.Add(f.Add(f.Square(lam), lam), p.X), q.X), c.A)
	// y3 = λ(x1+x3) + x3 + y1
	y3 := f.Add(f.Add(f.Mul(lam, f.Add(p.X, x3)), x3), p.Y)
	return Point{X: x3, Y: y3}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if p.Inf {
		return p
	}
	f := c.F
	if p.X.IsZero() {
		// λ undefined: 2p = ∞ (p is its own negative: y² = b).
		return Infinity()
	}
	// λ = x + y/x
	t, err := f.Div(p.Y, p.X)
	if err != nil {
		panic("ecc: unreachable division by zero in Double")
	}
	lam := f.Add(p.X, t)
	// x3 = λ² + λ + a
	x3 := f.Add(f.Add(f.Square(lam), lam), c.A)
	// y3 = x1² + (λ+1)·x3
	y3 := f.Add(f.Square(p.X), f.Mul(f.Add(lam, gf2poly.One()), x3))
	return Point{X: x3, Y: y3}
}

// ScalarMul returns k·p by double-and-add. Negative k multiplies -p.
func (c *Curve) ScalarMul(k *big.Int, p Point) Point {
	if k.Sign() < 0 {
		return c.ScalarMul(new(big.Int).Neg(k), c.Neg(p))
	}
	acc := Infinity()
	add := p
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			acc = c.Add(acc, add)
		}
		add = c.Double(add)
	}
	return acc
}

// HalfTrace solves z² + z = v for odd extension degree m, returning the
// half-trace H(v) = Σ v^(2^(2i)), i = 0..(m-1)/2. A solution exists iff
// Tr(v) = 0; the second return value reports solvability.
func HalfTrace(f *gf2m.Field, v gf2poly.Poly) (gf2poly.Poly, bool) {
	if f.M()%2 == 0 {
		// Half-trace only closes the quadratic for odd m.
		return gf2poly.Poly{}, false
	}
	if f.Trace(v) != 0 {
		return gf2poly.Poly{}, false
	}
	h := gf2poly.Zero()
	t := f.Reduce(v)
	for i := 0; i <= (f.M()-1)/2; i++ {
		h = h.Add(t)
		t = f.Square(f.Square(t))
	}
	return h, true
}

// RandomPoint samples a uniformly random affine point on the curve by
// drawing x until y² + xy = x³ + ax² + b is solvable (about half of all x
// work), then solving the quadratic with the half-trace. Requires odd m.
func (c *Curve) RandomPoint(r *rand.Rand) (Point, error) {
	f := c.F
	if f.M()%2 == 0 {
		return Point{}, fmt.Errorf("ecc: RandomPoint requires odd extension degree, have m=%d", f.M())
	}
	for tries := 0; tries < 4*f.M()+64; tries++ {
		x := f.Rand(r)
		if x.IsZero() {
			continue
		}
		// Substitute y = x·z: x²z² + x²z = x³+ax²+b, so
		// z² + z = x + a + b/x².
		binv, err := f.Inv(f.Square(x))
		if err != nil {
			continue
		}
		rhs := f.Add(f.Add(x, c.A), f.Mul(c.B, binv))
		z, ok := HalfTrace(f, rhs)
		if !ok {
			continue
		}
		y := f.Mul(x, z)
		p := Point{X: x, Y: y}
		if !c.IsOnCurve(p) {
			return Point{}, fmt.Errorf("ecc: half-trace produced an off-curve point (internal error)")
		}
		return p, nil
	}
	return Point{}, fmt.Errorf("ecc: no point found (degenerate parameters?)")
}

// Compressed is a point encoded as its x-coordinate plus one tie-break bit
// (the standard binary-curve compression: the bit is the constant term of
// y/x, which distinguishes the two square-root candidates).
type Compressed struct {
	X   gf2poly.Poly
	Bit uint
	Inf bool
}

// Compress encodes a point. Requires p on the curve.
func (c *Curve) Compress(p Point) (Compressed, error) {
	if p.Inf {
		return Compressed{Inf: true}, nil
	}
	if !c.IsOnCurve(p) {
		return Compressed{}, fmt.Errorf("ecc: compressing an off-curve point")
	}
	if p.X.IsZero() {
		return Compressed{X: p.X}, nil // y = sqrt(b) is unique
	}
	z, err := c.F.Div(p.Y, p.X)
	if err != nil {
		return Compressed{}, err
	}
	return Compressed{X: p.X, Bit: z.Coeff(0)}, nil
}

// Decompress recovers the full point. Requires odd extension degree (the
// half-trace quadratic solver); returns an error when x is not the
// x-coordinate of any point.
func (c *Curve) Decompress(cp Compressed) (Point, error) {
	if cp.Inf {
		return Infinity(), nil
	}
	f := c.F
	if cp.X.IsZero() {
		return Point{X: gf2poly.Zero(), Y: f.Sqrt(c.B)}, nil
	}
	if f.M()%2 == 0 {
		return Point{}, fmt.Errorf("ecc: decompression requires odd m, have %d", f.M())
	}
	x := f.Reduce(cp.X)
	x2inv, err := f.Inv(f.Square(x))
	if err != nil {
		return Point{}, err
	}
	rhs := f.Add(f.Add(x, c.A), f.Mul(c.B, x2inv))
	z, ok := HalfTrace(f, rhs)
	if !ok {
		return Point{}, fmt.Errorf("ecc: %v is not the x-coordinate of a curve point", cp.X)
	}
	if z.Coeff(0) != cp.Bit {
		z = f.Add(z, gf2poly.One()) // pick the other root of z²+z = rhs
	}
	p := Point{X: x, Y: f.Mul(x, z)}
	if !c.IsOnCurve(p) {
		return Point{}, fmt.Errorf("ecc: decompression produced an off-curve point (internal error)")
	}
	return p, nil
}
