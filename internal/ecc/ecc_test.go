package ecc

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/polytab"
)

// koblitz returns a K-163-style Koblitz curve (a=1, b=1) over GF(2^m) for
// odd m. (For m=163 with the NIST polynomial this is exactly NIST K-163.)
func koblitz(t testing.TB, m int) *Curve {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	f := gf2m.MustNew(p)
	c, err := NewCurve(f, gf2poly.One(), gf2poly.One())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCurveRejectsSingular(t *testing.T) {
	f := gf2m.MustNew(gf2poly.MustParse("x^7+x+1"))
	if _, err := NewCurve(f, gf2poly.One(), gf2poly.Zero()); err == nil {
		t.Error("b=0 should be rejected")
	}
}

func TestHalfTraceSolvesQuadratic(t *testing.T) {
	for _, m := range []int{7, 11, 17, 163} {
		p, _ := polytab.Default(m)
		f := gf2m.MustNew(p)
		r := rand.New(rand.NewSource(int64(m)))
		solved := 0
		for i := 0; i < 30; i++ {
			v := f.Rand(r)
			z, ok := HalfTrace(f, v)
			if !ok {
				if f.Trace(v) == 0 {
					t.Errorf("m=%d: Tr(v)=0 but HalfTrace failed", m)
				}
				continue
			}
			solved++
			if got := f.Add(f.Square(z), z); !got.Equal(f.Reduce(v)) {
				t.Errorf("m=%d: z²+z = %v, want %v", m, got, v)
			}
		}
		if solved == 0 {
			t.Errorf("m=%d: no quadratic solved in 30 draws", m)
		}
	}
}

func TestHalfTraceEvenDegreeUnsupported(t *testing.T) {
	f := gf2m.MustNew(gf2poly.MustParse("x^4+x+1"))
	if _, ok := HalfTrace(f, gf2poly.One()); ok {
		t.Error("even m should report unsupported")
	}
}

func TestRandomPointOnCurve(t *testing.T) {
	c := koblitz(t, 17)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		p, err := c.RandomPoint(r)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsOnCurve(p) {
			t.Fatalf("point %v not on curve", p)
		}
	}
}

func TestGroupLaws(t *testing.T) {
	c := koblitz(t, 17)
	r := rand.New(rand.NewSource(7))
	pt := func() Point {
		p, err := c.RandomPoint(r)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for i := 0; i < 15; i++ {
		p, q, s := pt(), pt(), pt()
		// Identity.
		if !c.Add(p, Infinity()).Equal(p) || !c.Add(Infinity(), p).Equal(p) {
			t.Fatal("identity law broken")
		}
		// Inverse.
		if !c.Add(p, c.Neg(p)).Equal(Infinity()) {
			t.Fatal("p + (-p) != ∞")
		}
		// Commutativity.
		if !c.Add(p, q).Equal(c.Add(q, p)) {
			t.Fatal("addition not commutative")
		}
		// Associativity; all results must stay on the curve.
		l := c.Add(c.Add(p, q), s)
		rr := c.Add(p, c.Add(q, s))
		if !l.Equal(rr) {
			t.Fatalf("associativity broken: %v vs %v", l, rr)
		}
		if !c.IsOnCurve(l) {
			t.Fatal("sum left the curve")
		}
		// Double consistency.
		if !c.Double(p).Equal(c.Add(p, p)) {
			t.Fatal("Double != Add(p,p)")
		}
	}
}

func TestScalarMul(t *testing.T) {
	c := koblitz(t, 17)
	r := rand.New(rand.NewSource(9))
	p, err := c.RandomPoint(r)
	if err != nil {
		t.Fatal(err)
	}
	// k·p by repeated addition vs double-and-add.
	acc := Infinity()
	for k := 0; k <= 20; k++ {
		got := c.ScalarMul(big.NewInt(int64(k)), p)
		if !got.Equal(acc) {
			t.Fatalf("%d·p mismatch", k)
		}
		if !c.IsOnCurve(got) {
			t.Fatalf("%d·p off curve", k)
		}
		acc = c.Add(acc, p)
	}
	// (k1+k2)·p = k1·p + k2·p with big scalars.
	k1 := new(big.Int).SetUint64(0xDEADBEEFCAFE)
	k2 := new(big.Int).SetUint64(0x123456789ABC)
	sum := new(big.Int).Add(k1, k2)
	lhs := c.ScalarMul(sum, p)
	rhs := c.Add(c.ScalarMul(k1, p), c.ScalarMul(k2, p))
	if !lhs.Equal(rhs) {
		t.Error("scalar distributivity broken")
	}
	// Negative scalar.
	if !c.ScalarMul(big.NewInt(-3), p).Equal(c.Neg(c.ScalarMul(big.NewInt(3), p))) {
		t.Error("negative scalar broken")
	}
}

func TestECDHAgreement(t *testing.T) {
	// The examples/ecc scenario: two parties agree on a shared secret over
	// a curve whose field came from an extracted polynomial.
	c := koblitz(t, 163)
	r := rand.New(rand.NewSource(11))
	g, err := c.RandomPoint(r)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := new(big.Int).SetString("123456789123456789123456789", 10)
	db, _ := new(big.Int).SetString("987654321987654321987654321", 10)
	qa := c.ScalarMul(da, g)
	qb := c.ScalarMul(db, g)
	s1 := c.ScalarMul(da, qb)
	s2 := c.ScalarMul(db, qa)
	if !s1.Equal(s2) || s1.Inf {
		t.Errorf("ECDH secrets differ: %v vs %v", s1, s2)
	}
}

func TestDoubleEdgeCases(t *testing.T) {
	c := koblitz(t, 17)
	// A point with x=0 satisfies y² = b; y = sqrt(b). Doubling it yields ∞.
	y := c.F.Sqrt(c.B)
	p := Point{X: gf2poly.Zero(), Y: y}
	if !c.IsOnCurve(p) {
		t.Fatal("constructed x=0 point not on curve")
	}
	if !c.Double(p).Equal(Infinity()) {
		t.Error("doubling an x=0 point should give ∞")
	}
	if !c.Double(Infinity()).Equal(Infinity()) {
		t.Error("2∞ should be ∞")
	}
	if !c.Neg(Infinity()).Equal(Infinity()) {
		t.Error("-∞ should be ∞")
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	for _, m := range []int{17, 163} {
		c := koblitz(t, m)
		r := rand.New(rand.NewSource(int64(m) + 1))
		for i := 0; i < 15; i++ {
			p, err := c.RandomPoint(r)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := c.Compress(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decompress(cp)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(p) {
				t.Fatalf("m=%d: round trip %v -> %v", m, p, got)
			}
			// The negated point compresses with the opposite bit but the
			// same x; both must decompress to their own point.
			neg := c.Neg(p)
			cpn, err := c.Compress(neg)
			if err != nil {
				t.Fatal(err)
			}
			if cpn.Bit == cp.Bit {
				t.Fatalf("m=%d: p and -p share the compression bit", m)
			}
			gotN, err := c.Decompress(cpn)
			if err != nil {
				t.Fatal(err)
			}
			if !gotN.Equal(neg) {
				t.Fatalf("m=%d: -p round trip failed", m)
			}
		}
	}
}

func TestCompressSpecialPoints(t *testing.T) {
	c := koblitz(t, 17)
	// Infinity.
	cp, err := c.Compress(Infinity())
	if err != nil || !cp.Inf {
		t.Fatalf("compress ∞: %v %v", cp, err)
	}
	back, err := c.Decompress(cp)
	if err != nil || !back.Inf {
		t.Fatalf("decompress ∞: %v %v", back, err)
	}
	// x = 0 point.
	p := Point{X: gf2poly.Zero(), Y: c.F.Sqrt(c.B)}
	cp, err = c.Compress(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err = c.Decompress(cp)
	if err != nil || !back.Equal(p) {
		t.Fatalf("x=0 round trip: %v %v", back, err)
	}
	// Off-curve compression rejected.
	if _, err := c.Compress(Point{X: gf2poly.One(), Y: gf2poly.Zero()}); err == nil {
		t.Error("off-curve point should not compress")
	}
	// Invalid x rejected: find an x with no point (Tr != 0).
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := c.F.Rand(r)
		if x.IsZero() {
			continue
		}
		x2inv, err := c.F.Inv(c.F.Square(x))
		if err != nil {
			continue
		}
		rhs := c.F.Add(c.F.Add(x, c.A), c.F.Mul(c.B, x2inv))
		if c.F.Trace(rhs) == 1 {
			if _, err := c.Decompress(Compressed{X: x}); err == nil {
				t.Error("invalid x should not decompress")
			}
			return
		}
	}
	t.Skip("no invalid x found in 200 draws (unlikely)")
}
