package obs

import (
	"testing"
	"time"
)

// finishBit drives one cone through BitFinish with the given actual peak.
func finishBit(rec *Recorder, bit int, peak int) {
	rec.BitFinish(BitStats{
		Bit:       bit,
		Name:      "z" + string(rune('0'+bit%10)),
		PeakTerms: peak,
		Duration:  time.Millisecond,
	})
}

// TestAnomalyAbsoluteThreshold: once the median proves the design cancels
// (healthy cones at 10% of bound), a cone reaching the absolute threshold
// is flagged even though it stays under RelFactor times the median.
func TestAnomalyAbsoluteThreshold(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	pred := map[int]int64{}
	for bit := 0; bit < 9; bit++ {
		pred[bit] = 10000
	}
	rec.EnableConeAnomalies(pred, AnomalyConfig{})

	for bit := 0; bit < 8; bit++ {
		finishBit(rec, bit, 1000) // 10% of bound: healthy, arms the median
	}
	finishBit(rec, 8, 6000) // 60%: under 8x the 10% median, over AbsRatio

	anoms := mem.ByType(EvConeAnomaly)
	if len(anoms) != 1 {
		t.Fatalf("anomalies: %d, want 1", len(anoms))
	}
	e := anoms[0]
	if e.V["bit"] != 8 || e.V["peak"] != 6000 || e.V["predicted"] != 10000 {
		t.Fatalf("anomaly payload: %+v", e.V)
	}
	if e.V["ratio_pct"] != 60 || e.V["median_pct"] != 10 {
		t.Fatalf("ratio_pct = %d median_pct = %d, want 60/10", e.V["ratio_pct"], e.V["median_pct"])
	}
	if got := rec.Snapshot().Counters["cone_anomalies"]; got != 1 {
		t.Fatalf("cone_anomalies counter = %d", got)
	}
}

// TestAnomalyTightBoundMedianSelfDisarms: Mastrovito-style cones track
// their no-cancellation bound exactly, so a healthy run sits at 100%
// across the board — the absolute test must self-disarm on that median
// instead of flagging every cone.
func TestAnomalyTightBoundMedianSelfDisarms(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	pred := map[int]int64{}
	for bit := 0; bit < 12; bit++ {
		pred[bit] = 1000
	}
	rec.EnableConeAnomalies(pred, AnomalyConfig{})
	for bit := 0; bit < 12; bit++ {
		finishBit(rec, bit, 1000) // exactly the bound, like its siblings
	}
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("tight-bound architecture flagged %d healthy cones", n)
	}
}

// TestAnomalyWarmupJudgedRetroactively: a tampered cone that finishes
// before the median has support is flagged the moment the detector arms.
func TestAnomalyWarmupJudgedRetroactively(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	pred := map[int]int64{}
	for bit := 0; bit < 9; bit++ {
		pred[bit] = 10000
	}
	rec.EnableConeAnomalies(pred, AnomalyConfig{})

	finishBit(rec, 0, 6000) // the fat cone lands first
	for bit := 1; bit < 7; bit++ {
		finishBit(rec, bit, 500) // healthy siblings at 5%
	}
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("flagged during warm-up: %d", n)
	}
	finishBit(rec, 7, 500) // 8th sample arms the detector
	anoms := mem.ByType(EvConeAnomaly)
	if len(anoms) != 1 || anoms[0].V["bit"] != 0 {
		t.Fatalf("warm-up cone not retro-flagged: %+v", anoms)
	}
}

// TestAnomalyRelativeToMedian: one fat cone among many healthy siblings trips
// the relative test even below the absolute threshold.
func TestAnomalyRelativeToMedian(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	pred := map[int]int64{}
	for bit := 0; bit < 10; bit++ {
		pred[bit] = 100000
	}
	rec.EnableConeAnomalies(pred, AnomalyConfig{})

	// Eight healthy cones at 1% of bound arm the median.
	for bit := 0; bit < 8; bit++ {
		finishBit(rec, bit, 1000)
	}
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("healthy cones flagged: %d", n)
	}
	// 10% of bound is far below AbsRatio 0.5 but 10x the 1% median.
	finishBit(rec, 8, 10000)
	anoms := mem.ByType(EvConeAnomaly)
	if len(anoms) != 1 {
		t.Fatalf("relative anomaly not flagged (got %d)", len(anoms))
	}
	if anoms[0].V["median_pct"] != 1 {
		t.Fatalf("median_pct = %d, want 1", anoms[0].V["median_pct"])
	}
	// Another healthy sibling afterwards stays clean.
	finishBit(rec, 9, 1200)
	if n := len(mem.ByType(EvConeAnomaly)); n != 1 {
		t.Fatalf("healthy cone after anomaly flagged: %d total", n)
	}
}

// TestAnomalyMinRatioFloor: on heavy-cancellation designs healthy ratios
// scatter around a sub-percent median; a cone at 10x the median but still
// a fraction of a percent of its bound is noise, not tampering.
func TestAnomalyMinRatioFloor(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	pred := map[int]int64{}
	for bit := 0; bit < 10; bit++ {
		pred[bit] = 1000000
	}
	rec.EnableConeAnomalies(pred, AnomalyConfig{})
	for bit := 0; bit < 8; bit++ {
		finishBit(rec, bit, 200) // 0.02% of bound
	}
	finishBit(rec, 8, 2000) // 0.2%: 10x the median, far below MinRatio
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("sub-floor relative outlier flagged: %d", n)
	}
	finishBit(rec, 9, 60000) // 6%: 300x the median and above the 5% floor
	if n := len(mem.ByType(EvConeAnomaly)); n != 1 {
		t.Fatalf("above-floor outlier not flagged: %d", n)
	}
}

// TestAnomalyMinPredictedFloor: trivially small cones reach their bound
// without meaning anything and must never be flagged.
func TestAnomalyMinPredictedFloor(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	rec.EnableConeAnomalies(map[int]int64{0: 2, 1: 100}, AnomalyConfig{})

	finishBit(rec, 0, 2)   // 100% of a 2-term bound: below MinPredicted, skip
	finishBit(rec, 1, 100) // 100% of a 100-term bound: still below 256, skip
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("sub-floor cones flagged: %d", n)
	}
}

// TestAnomalyUnpredictedBitSkipped: bits the predictor never scored pass
// through silently.
func TestAnomalyUnpredictedBitSkipped(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	rec.EnableConeAnomalies(map[int]int64{0: 10000}, AnomalyConfig{})
	finishBit(rec, 7, 999999)
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("unpredicted bit flagged: %d", n)
	}
}

// TestAnomalyDisarm: an empty map disarms the stage.
func TestAnomalyDisarm(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	rec.EnableConeAnomalies(map[int]int64{0: 10000}, AnomalyConfig{})
	rec.EnableConeAnomalies(nil, AnomalyConfig{})
	finishBit(rec, 0, 9999)
	if n := len(mem.ByType(EvConeAnomaly)); n != 0 {
		t.Fatalf("disarmed stage flagged: %d", n)
	}
}
