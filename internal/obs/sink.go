package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// NDJSONSink streams every event as one JSON object per line — the
// machine-readable form the Figure-4 per-bit profile is rebuilt from
// (see EXPERIMENTS.md). Safe for concurrent Emit.
type NDJSONSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewNDJSONSink wraps w (buffered; call Recorder.Close / Flush at the end).
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	bw := bufio.NewWriter(w)
	return &NDJSONSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event line. Encoding errors are sticky and surface from
// Flush, so the hot path never has to check.
func (s *NDJSONSink) Emit(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Flush drains the buffer and reports the first error seen.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ProgressSink renders a human-readable live ticker: one line per phase
// boundary and per completed output bit, intended for stderr while a large
// extraction runs. It learns the total bit count from the rewrite span's
// start event, so completion lines read "[ 42/163]".
//
// Safe for concurrent Emit: the cone workers all finish bits in parallel,
// so the done/total counters sit behind the sink's mutex and every ticker
// line is composed in a private buffer and handed to the writer as ONE
// Write call — concurrent emitters can neither tear a line nor misnumber
// the [done/total] sequence.
type ProgressSink struct {
	mu          sync.Mutex
	w           io.Writer
	buf         []byte
	total       int64
	done        int64
	rewriteSpan int64 // span ID of the current rewrite phase
}

// NewProgressSink writes the ticker to w.
func NewProgressSink(w io.Writer) *ProgressSink { return &ProgressSink{w: w} }

func (s *ProgressSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = s.buf[:0]
	switch e.Ev {
	case EvSpanStart:
		if e.Name == "rewrite" {
			s.total = e.V["bits"]
			s.done = 0
			s.rewriteSpan = e.Span
			s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] rewrite: %d bits in %d threads\n",
				e.TS, e.V["bits"], e.V["threads"])
			break
		}
		// Per-cone child spans under rewrite would double the ticker volume;
		// the bit_finish lines already cover them.
		if s.rewriteSpan != 0 && e.Parent == s.rewriteSpan {
			return
		}
		s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] %s...\n", e.TS, e.Name)
	case EvSpanEnd:
		if s.rewriteSpan != 0 && e.Parent == s.rewriteSpan && e.Name != "cone-sort" {
			return
		}
		s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] %s done in %v\n",
			e.TS, e.Name, time.Duration(e.V["dur_ns"]).Round(time.Microsecond))
	case EvBitFinish:
		s.done++
		s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] [%3d/%3d] %s: %d subst, peak %d terms, %d cancelled, %v\n",
			e.TS, s.done, s.total, e.Name, e.V["subst"], e.V["peak"], e.V["cancelled"],
			time.Duration(e.V["dur_ns"]).Round(time.Microsecond))
	case EvConeAnomaly:
		s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] ANOMALY %s: peak %d terms is %d%% of the no-cancellation bound %d (healthy median %d%%)\n",
			e.TS, e.Name, e.V["peak"], e.V["ratio_pct"], e.V["predicted"], e.V["median_pct"])
	case EvHeap:
		s.buf = fmt.Appendf(s.buf, "[obs %8.3fs] heap %s (watermark %s)\n",
			e.TS, humanBytes(e.V["heap_bytes"]), humanBytes(e.V["watermark"]))
	default:
		return
	}
	s.w.Write(s.buf) //nolint:errcheck — best-effort ticker output
}

// Flush is a no-op (every line is written eagerly).
func (s *ProgressSink) Flush() error { return nil }

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// MemorySink captures events in memory — the test hook, and the snapshot
// source for callers that want the event stream without I/O.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Flush is a no-op.
func (s *MemorySink) Flush() error { return nil }

// Events returns a copy of everything captured so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ByType returns the captured events of one type, in order.
func (s *MemorySink) ByType(ev string) []Event {
	var out []Event
	for _, e := range s.Events() {
		if e.Ev == ev {
			out = append(out, e)
		}
	}
	return out
}
