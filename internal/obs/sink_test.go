package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// countingWriter records every Write it receives, so a test can assert that
// no line was torn across multiple Write calls.
type countingWriter struct {
	mu     sync.Mutex
	writes []string
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes = append(w.writes, string(p))
	w.mu.Unlock()
	return len(p), nil
}

// TestProgressSinkConcurrentEmit hammers Emit from many goroutines (run with
// -race): every ticker line must arrive as exactly one Write, every line must
// be complete, and the [done/total] counters must hit every value exactly
// once — the guarantees a parallel cone rewrite relies on.
func TestProgressSinkConcurrentEmit(t *testing.T) {
	w := &countingWriter{}
	s := NewProgressSink(w)

	const bits = 64
	s.Emit(Event{Ev: EvSpanStart, Name: "rewrite", Span: 1,
		V: map[string]int64{"bits": bits, "threads": 8}})

	var wg sync.WaitGroup
	for bit := 0; bit < bits; bit++ {
		wg.Add(1)
		go func(bit int) {
			defer wg.Done()
			s.Emit(Event{Ev: EvBitFinish, Name: fmt.Sprintf("z%d", bit),
				V: map[string]int64{"subst": 10, "peak": 100, "cancelled": 5, "dur_ns": 1000}})
		}(bit)
	}
	wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.writes) != bits+1 {
		t.Fatalf("writes: %d, want %d (1 header + %d bits)", len(w.writes), bits+1, bits)
	}
	seen := make([]bool, bits+1)
	for _, line := range w.writes {
		if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
			t.Fatalf("torn or merged write: %q", line)
		}
		var done, total int
		if n, _ := fmt.Sscanf(line[strings.LastIndex(line, "["):], "[%d/%d]", &done, &total); n == 2 {
			if total != bits || done < 1 || done > bits || seen[done] {
				t.Fatalf("bad progress counter in %q (done=%d seen=%v)", line, done, seen[done])
			}
			seen[done] = true
		}
	}
	for done := 1; done <= bits; done++ {
		if !seen[done] {
			t.Fatalf("progress value %d/%d never printed", done, bits)
		}
	}
}

// TestProgressSinkConeSpanFiltering: per-cone child spans under the rewrite
// phase are suppressed (bit_finish lines cover them), while sibling phase
// spans and the cone-sort summary still print.
func TestProgressSinkConeSpanFiltering(t *testing.T) {
	var buf bytes.Buffer
	s := NewProgressSink(&buf)

	s.Emit(Event{Ev: EvSpanStart, Name: "rewrite", Span: 1, V: map[string]int64{"bits": 2, "threads": 1}})
	s.Emit(Event{Ev: EvSpanStart, Name: "z0", Span: 2, Parent: 1})
	s.Emit(Event{Ev: EvSpanEnd, Name: "z0", Span: 2, Parent: 1, V: map[string]int64{"dur_ns": 500}})
	s.Emit(Event{Ev: EvSpanEnd, Name: "cone-sort", Span: 3, Parent: 1, V: map[string]int64{"dur_ns": 100}})
	s.Emit(Event{Ev: EvSpanEnd, Name: "rewrite", Span: 1, V: map[string]int64{"dur_ns": 9000}})
	s.Emit(Event{Ev: EvSpanStart, Name: "verify", Span: 4, Parent: 0})

	out := buf.String()
	if strings.Contains(out, "z0") {
		t.Fatalf("cone child span leaked into ticker:\n%s", out)
	}
	for _, want := range []string{"rewrite: 2 bits", "cone-sort done", "rewrite done", "verify..."} {
		if !strings.Contains(out, want) {
			t.Fatalf("ticker lacks %q:\n%s", want, out)
		}
	}
}

// TestProgressSinkAnomalyLine: cone_anomaly events render with the ratio and
// bound spelled out.
func TestProgressSinkAnomalyLine(t *testing.T) {
	var buf bytes.Buffer
	s := NewProgressSink(&buf)
	s.Emit(Event{Ev: EvConeAnomaly, Name: "z17", V: map[string]int64{
		"peak": 6000, "predicted": 10000, "ratio_pct": 60, "median_pct": 2}})
	out := buf.String()
	if !strings.Contains(out, "ANOMALY z17") || !strings.Contains(out, "60%") {
		t.Fatalf("anomaly line: %q", out)
	}
}
