package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanHierarchy: lexical StartSpan nesting plus concurrent Child spans
// reconstruct into one tree.
func TestSpanHierarchy(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)

	root := rec.StartSpan("extraction", nil)
	phase := rec.StartSpan("rewrite", map[string]int64{"bits": 2})

	var wg sync.WaitGroup
	for _, name := range []string{"z0", "z1"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c := phase.Child(name, nil)
			c.SetAttr("peak_terms", 7)
			c.SetStatus("ok")
			c.EndWith(map[string]int64{"subst": 3})
		}(name)
	}
	wg.Wait()
	phase.End()
	verify := rec.StartSpan("verify", nil)
	verify.End()
	root.End()

	roots := rec.TraceTree()
	if len(roots) != 1 || roots[0].Name != "extraction" {
		t.Fatalf("roots: %+v", roots)
	}
	var names []string
	for _, c := range roots[0].Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 || names[0] != "rewrite" || names[1] != "verify" {
		t.Fatalf("extraction children: %v", names)
	}
	rw := roots[0].Children[0]
	if len(rw.Children) != 2 {
		t.Fatalf("rewrite children: %+v", rw.Children)
	}
	for _, cone := range rw.Children {
		if cone.Attrs["peak_terms"] != 7 || cone.Attrs["subst"] != 3 {
			t.Fatalf("cone %s attrs: %+v", cone.Name, cone.Attrs)
		}
		if cone.Status != "ok" {
			t.Fatalf("cone %s status: %q", cone.Name, cone.Status)
		}
	}

	// The span events carry the same linkage for streaming consumers.
	starts := mem.ByType(EvSpanStart)
	byName := map[string]Event{}
	for _, e := range starts {
		byName[e.Name] = e
	}
	if byName["rewrite"].Parent != byName["extraction"].Span {
		t.Fatal("rewrite span_start not parented under extraction")
	}
	if byName["z0"].Parent != byName["rewrite"].Span {
		t.Fatal("cone span_start not parented under rewrite")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	s := rec.StartSpan("p", nil)
	if s.End() == 0 {
		// zero duration is possible but the record must exist either way
	}
	if d := s.End(); d != 0 {
		t.Fatalf("second End returned %v, want 0", d)
	}
	if got := len(rec.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

// TestSpanEndWithAttrsOnEvent: EndWith attributes ride on the span_end
// event payload next to dur_ns.
func TestSpanEndWithAttrsOnEvent(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	s := rec.StartSpan("cone", nil)
	s.EndWith(map[string]int64{"peak_terms": 42, "retries": 1})
	ends := mem.ByType(EvSpanEnd)
	if len(ends) != 1 {
		t.Fatalf("span_end events: %d", len(ends))
	}
	e := ends[0]
	if e.V["peak_terms"] != 42 || e.V["retries"] != 1 {
		t.Fatalf("span_end payload: %+v", e.V)
	}
	if _, ok := e.V["dur_ns"]; !ok {
		t.Fatal("span_end lost dur_ns")
	}
}

func TestRecordSpanParentsUnderOpenPhase(t *testing.T) {
	rec := NewRecorder()
	phase := rec.StartSpan("rewrite", nil)
	rec.RecordSpan("cone-sort", 5*time.Millisecond)
	phase.End()
	tree := rec.TraceTree()
	if len(tree) != 1 || tree[0].Name != "rewrite" {
		t.Fatalf("tree roots: %+v", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "cone-sort" {
		t.Fatalf("rewrite children: %+v", tree[0].Children)
	}
}

func TestWriteTraceTreeRendering(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan("extraction", nil)
	c := root.Child("z0", nil)
	c.SetStatus("budget")
	c.EndWith(map[string]int64{"peak_terms": 9})
	root.End()

	var sb strings.Builder
	WriteTraceTree(&sb, rec.TraceTree())
	out := sb.String()
	if !strings.Contains(out, "extraction") {
		t.Fatalf("render lacks root:\n%s", out)
	}
	if !strings.Contains(out, "└─ z0 [budget]") {
		t.Fatalf("render lacks child with status:\n%s", out)
	}
	if !strings.Contains(out, "peak_terms=9") {
		t.Fatalf("render lacks attrs:\n%s", out)
	}
}

// TestBuildTraceTreeLegacyRecords: SpanRecords without IDs (pre-trace JSON
// reports) still render, as roots.
func TestBuildTraceTreeLegacyRecords(t *testing.T) {
	roots := BuildTraceTree([]SpanRecord{
		{Name: "parse", Duration: time.Millisecond},
		{Name: "rewrite", Duration: time.Millisecond},
	})
	if len(roots) != 2 {
		t.Fatalf("legacy records produced %d roots, want 2", len(roots))
	}
}
