package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGaugeWatermark(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(10) // 15, watermark 15
	g.Add(-12)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if got := g.Max(); got != 15 {
		t.Fatalf("Max = %d, want 15", got)
	}
	g.Set(7)
	if g.Value() != 7 || g.Max() != 15 {
		t.Fatalf("after Set(7): value %d max %d, want 7 / 15", g.Value(), g.Max())
	}
	g.Set(100)
	if got := g.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 106 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	// 1 → bucket bound 1; 2,3 → bound 3; 100 → bound 127.
	want := map[int64]int64{1: 1, 3: 2, 127: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets %v, want %v", s.Buckets, want)
	}
	for bound, n := range want {
		if s.Buckets[bound] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", bound, s.Buckets[bound], n, s.Buckets)
		}
	}
}

func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("x").Add(3)
	r.Gauge("y").Set(9)
	r.Histogram("z").Observe(4)
	s := r.Snapshot()
	if s.Counters["x"] != 3 || s.Gauges["y"] != 9 || s.GaugeMaxes["y"] != 9 || s.Histograms["z"].Count != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if got := s.Names(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("Names = %v", got)
	}
}

// TestNilSafety: the uninstrumented pipeline holds nil recorders and nil
// metric handles everywhere; every method must be a safe no-op.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rec.Emit(EvHeap, "", nil)
	rec.BitStart(0, "z0")
	rec.BitFinish(BitStats{})
	rec.SampleHeap()
	rec.RecordSpan("x", time.Second)
	rec.AttachSink(NewMemorySink())
	rec.StartHeapSampler(time.Millisecond)()
	if rec.Elapsed() != 0 || rec.Spans() != nil {
		t.Fatal("nil recorder leaked state")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	sp := rec.StartSpan("phase", nil)
	if sp != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	if sp.End() != 0 {
		t.Fatal("nil span End != 0")
	}
	if sp.EndWith(map[string]int64{"x": 1}) != 0 {
		t.Fatal("nil span EndWith != 0")
	}
	if c := sp.Child("sub", nil); c != nil {
		t.Fatal("nil span Child != nil")
	}
	sp.SetAttr("k", 1)
	sp.SetStatus("budget")
	rec.EmitJob("j1", "job_start", "j1", nil)
	if jr := rec.JobRecorder("j1"); jr != nil {
		t.Fatal("nil recorder JobRecorder != nil")
	}
	if rec.Journal() != nil {
		t.Fatal("nil recorder Journal != nil")
	}
	rec.EnableConeAnomalies(map[int]int64{0: 100}, AnomalyConfig{})
	if rec.TraceTree() != nil {
		t.Fatal("nil recorder TraceTree != nil")
	}
	var j *Journal
	j.Emit(Event{})
	if j.LastSeq() != 0 || j.OldestSeq() != 0 || j.Subscribers() != 0 {
		t.Fatal("nil journal leaked state")
	}
	if evs, trunc := j.ReplaySince(0); evs != nil || trunc {
		t.Fatal("nil journal replayed events")
	}
	if j.Subscribe(0) != nil {
		t.Fatal("nil journal Subscribe != nil")
	}
	var sub *Subscription
	sub.Cancel()

	reg := rec.Metrics()
	c := reg.Counter("c")
	c.Inc()
	c.Add(5)
	g := reg.Gauge("g")
	g.Set(1)
	g.Add(-1)
	h := reg.Histogram("h")
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metric handles recorded values")
	}
	if s := reg.Snapshot(); s.Names() != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	if s := rec.Snapshot(); s.Names() != nil {
		t.Fatal("nil recorder snapshot not empty")
	}
}

func TestRecorderSpans(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	sp := rec.StartSpan("parse", map[string]int64{"files": 1})
	if d := sp.End(); d < 0 {
		t.Fatalf("duration %v", d)
	}
	rec.RecordSpan("cone-sort", 5*time.Millisecond)

	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "parse" || spans[1].Name != "cone-sort" {
		t.Fatalf("spans %+v", spans)
	}
	if spans[1].Duration != 5*time.Millisecond {
		t.Fatalf("recorded duration %v", spans[1].Duration)
	}

	starts := mem.ByType(EvSpanStart)
	ends := mem.ByType(EvSpanEnd)
	if len(starts) != 1 || starts[0].Name != "parse" || starts[0].V["files"] != 1 {
		t.Fatalf("span_start events %+v", starts)
	}
	if len(ends) != 2 || ends[1].V["dur_ns"] != int64(5*time.Millisecond) {
		t.Fatalf("span_end events %+v", ends)
	}
}

func TestBitEventsAndMetrics(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	rec.BitStart(3, "z3")
	rec.BitFinish(BitStats{
		Bit: 3, Name: "z3", ConeGates: 12, Substitutions: 10,
		PeakTerms: 40, FinalTerms: 4, Cancelled: 18, Duration: time.Millisecond,
	})

	if ev := mem.ByType(EvBitStart); len(ev) != 1 || ev[0].V["bit"] != 3 {
		t.Fatalf("bit_start %+v", ev)
	}
	fin := mem.ByType(EvBitFinish)
	if len(fin) != 1 {
		t.Fatalf("bit_finish %+v", fin)
	}
	v := fin[0].V
	if v["subst"] != 10 || v["peak"] != 40 || v["cancelled"] != 18 || v["final"] != 4 {
		t.Fatalf("payload %v", v)
	}

	s := rec.Snapshot()
	if s.Counters["bits_done"] != 1 {
		t.Fatalf("bits_done = %d", s.Counters["bits_done"])
	}
	if s.Histograms["peak_terms"].Max != 40 || s.Histograms["bit_dur_ns"].Count != 1 {
		t.Fatalf("histograms %+v", s.Histograms)
	}
}

func TestHeapSampler(t *testing.T) {
	mem := NewMemorySink()
	rec := NewRecorder(mem)
	stop := rec.StartHeapSampler(time.Hour) // only the final stop-sample fires
	stop()
	stop() // idempotent
	ev := mem.ByType(EvHeap)
	if len(ev) != 1 {
		t.Fatalf("heap events %d, want 1", len(ev))
	}
	if ev[0].V["heap_bytes"] <= 0 || ev[0].V["watermark"] < ev[0].V["heap_bytes"] {
		t.Fatalf("heap payload %v", ev[0].V)
	}
	if rec.Snapshot().GaugeMaxes["heap_bytes"] != ev[0].V["watermark"] {
		t.Fatal("gauge watermark does not match emitted watermark")
	}
}

func TestNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	rec := NewRecorder(sink)
	rec.StartSpan("rewrite", map[string]int64{"bits": 2, "threads": 1}).End()
	rec.BitFinish(BitStats{Bit: 0, Name: "z0", PeakTerms: 5})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var evs []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Ev != EvSpanStart || evs[1].Ev != EvSpanEnd || evs[2].Ev != EvBitFinish {
		t.Fatalf("event order %+v", evs)
	}
	if evs[0].V["bits"] != 2 || evs[2].V["peak"] != 5 {
		t.Fatalf("payloads %+v", evs)
	}
}

func TestNDJSONSinkStickyError(t *testing.T) {
	sink := NewNDJSONSink(failWriter{})
	// Overflow the 4KB bufio buffer so the underlying write error surfaces.
	big := strings.Repeat("x", 8192)
	sink.Emit(Event{Ev: EvSpanStart, Name: big})
	sink.Emit(Event{Ev: EvSpanEnd, Name: big})
	if err := sink.Flush(); err == nil {
		t.Fatal("expected sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &json.UnsupportedValueError{Str: "failWriter"}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewProgressSink(&buf)
	rec := NewRecorder(sink)
	rec.StartSpan("parse", nil).End()
	sp := rec.StartSpan("rewrite", map[string]int64{"bits": 4, "threads": 2})
	rec.BitFinish(BitStats{Bit: 0, Name: "z0", Substitutions: 9, PeakTerms: 21, Cancelled: 4})
	sp.End()
	rec.SampleHeap()

	out := buf.String()
	for _, want := range []string{
		"parse...",
		"parse done in",
		"rewrite: 4 bits in 2 threads",
		"[  1/  4] z0: 9 subst, peak 21 terms, 4 cancelled",
		"rewrite done in",
		"heap ",
		"watermark",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.0 KB",
		3 << 20: "3.0 MB",
		5 << 30: "5.0 GB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMemorySinkByType(t *testing.T) {
	mem := NewMemorySink()
	mem.Emit(Event{Ev: EvBitStart, Name: "a"})
	mem.Emit(Event{Ev: EvBitFinish, Name: "a"})
	mem.Emit(Event{Ev: EvBitStart, Name: "b"})
	if got := mem.ByType(EvBitStart); len(got) != 2 || got[1].Name != "b" {
		t.Fatalf("ByType %+v", got)
	}
	if got := len(mem.Events()); got != 3 {
		t.Fatalf("Events len %d", got)
	}
}

// TestConcurrency hammers a recorder from many goroutines — the worker-pool
// usage pattern — and relies on -race for the verdict.
func TestConcurrency(t *testing.T) {
	rec := NewRecorder(NewMemorySink())
	c := rec.Metrics().Counter("substitutions")
	g := rec.Metrics().Gauge("live_terms")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				rec.Metrics().Histogram("peak_terms").Observe(int64(i))
				if i%50 == 0 {
					rec.BitStart(w*1000+i, "z")
					rec.BitFinish(BitStats{Bit: w*1000 + i, Name: "z"})
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*200 {
		t.Fatalf("substitutions = %d, want %d", got, 8*200)
	}
	if g.Value() != 0 {
		t.Fatalf("live_terms = %d, want 0", g.Value())
	}
	if got := rec.Snapshot().Counters["bits_done"]; got != 8*4 {
		t.Fatalf("bits_done = %d, want %d", got, 8*4)
	}
}

// TestNDJSONBufferedUntilClose audits the flush contract: events sit in the
// sink's buffer — invisible to the underlying writer — until Recorder.Close
// drains them. An exit path that skips Close would lose every one of them.
func TestNDJSONBufferedUntilClose(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewNDJSONSink(&buf))
	rec.StartSpan("parse", nil).End()
	rec.BitFinish(BitStats{Bit: 0, Name: "z0"})

	if buf.Len() != 0 {
		// Not a failure of durability, but the premise of the audit: small
		// event streams must still be in the bufio buffer here.
		t.Fatalf("events reached the writer before Close (%d bytes) — buffer size changed?", buf.Len())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("after Close got %d records, want 3", lines)
	}
}

// TestRecorderCloseIdempotent covers the deferred-close-plus-explicit-close
// pattern the CLIs use: a second Close must not error or duplicate output.
func TestRecorderCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewNDJSONSink(&buf))
	rec.StartSpan("parse", nil).End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatalf("second Close wrote %d extra bytes", buf.Len()-n)
	}
	var nilRec *Recorder
	if err := nilRec.Close(); err != nil {
		t.Fatal("nil recorder Close must be a no-op")
	}
}
