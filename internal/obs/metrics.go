package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so instrumented hot paths
// can hold pre-fetched handles without guarding on recorder presence.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for the value to stay meaningful; this is not
// enforced).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (live terms,
// workers busy, heap bytes). A Gauge also tracks the maximum value it has
// ever held — the watermark — because peak working set is the quantity the
// paper's Mem columns report.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores an absolute value and raises the watermark if exceeded.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raise(n)
}

// Add moves the gauge by delta (may be negative) and raises the watermark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(n int64) {
	for {
		cur := g.max.Load()
		if n <= cur || g.max.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the watermark: the largest value the gauge ever held.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram accumulates observations into fixed power-of-two buckets
// (bucket i counts observations with value < 2^i, i up to histBuckets-1;
// the last bucket is unbounded). Exponential buckets suit the heavy-tailed
// per-bit cost distributions of Figure 4. Concurrency is a single mutex —
// observations happen per output bit, not per substitution, so contention
// is negligible.
type Histogram struct {
	mu    sync.Mutex
	n     int64
	sum   int64
	min   int64
	max   int64
	count [histBuckets]int64
}

const histBuckets = 64

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	for x := v; x > 0 && b < histBuckets-1; x >>= 1 {
		b++
	}
	h.mu.Lock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.count[b]++
	h.mu.Unlock()
}

// HistogramBucket is one occupied histogram bucket: its inclusive upper
// bound (2^i − 1, the Prometheus le boundary) and the NON-cumulative count
// of observations that landed in it.
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram's aggregates.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps the inclusive upper bound 2^i-1 to the number of
	// observations that landed in bucket i; empty buckets are omitted.
	Buckets map[int64]int64 `json:"buckets,omitempty"`
	// Bounds lists the same occupied buckets in ascending bound order — the
	// le boundaries the Prometheus renderer cumulates over, exported so the
	// text exposition and the JSON snapshot agree by construction.
	Bounds []HistogramBucket `json:"bounds,omitempty"`
}

// Snapshot copies the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.count {
		if c == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[int64]int64)
		}
		bound := int64(1)<<uint(i) - 1
		s.Buckets[bound] = c
		// h.count ascends by bucket index, so Bounds comes out sorted by Le.
		s.Bounds = append(s.Bounds, HistogramBucket{Le: bound, Count: c})
	}
	return s
}

// Registry is a lock-cheap metrics registry: get-or-create is guarded by a
// mutex, but the returned handles update via atomics, so instrumented code
// fetches its handles once and never touches the registry lock again.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	GaugeMaxes map[string]int64             `json:"gauge_maxes,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		s.GaugeMaxes = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
			s.GaugeMaxes[name] = g.Max()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all metrics of every kind, for
// deterministic rendering.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
