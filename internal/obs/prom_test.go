package obs

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// populateRegistry fills a recorder with one metric of each kind.
func populateRegistry(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	m := rec.Metrics()
	m.Counter("substitutions").Add(1234)
	g := m.Gauge("live_terms")
	g.Set(900)
	g.Set(120)
	h := m.Histogram("peak_terms")
	for _, v := range []int64{0, 1, 3, 7, 8, 300, 70000} {
		h.Observe(v)
	}
	return rec
}

func TestWritePrometheusFormat(t *testing.T) {
	rec := populateRegistry(t)
	var sb strings.Builder
	if err := WritePrometheus(&sb, rec.Snapshot(), "gfre"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gfre_substitutions_total counter",
		"gfre_substitutions_total 1234",
		"# TYPE gfre_live_terms gauge",
		"gfre_live_terms 120",
		"gfre_live_terms_max 900",
		"# TYPE gfre_peak_terms histogram",
		`gfre_peak_terms_bucket{le="+Inf"} 7`,
		"gfre_peak_terms_sum 70319",
		"gfre_peak_terms_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
}

// TestPrometheusRoundTrip: the renderer's output must satisfy our own
// parser's structural validation, and the parsed numbers must agree with
// both the JSON snapshot and its exported histogram Bounds — the
// "text exposition and /metrics JSON agree" guarantee.
func TestPrometheusRoundTrip(t *testing.T) {
	rec := populateRegistry(t)
	snap := rec.Snapshot()
	var sb strings.Builder
	if err := WritePrometheus(&sb, snap, "gfre"); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheusText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}

	if c := fams["gfre_substitutions_total"]; c == nil || c.Type != "counter" ||
		len(c.Samples) != 1 || c.Samples[0].Value != float64(snap.Counters["substitutions"]) {
		t.Fatalf("counter family: %+v", c)
	}
	if g := fams["gfre_live_terms"]; g == nil || g.Samples[0].Value != float64(snap.Gauges["live_terms"]) {
		t.Fatalf("gauge family: %+v", g)
	}
	if g := fams["gfre_live_terms_max"]; g == nil || g.Samples[0].Value != float64(snap.GaugeMaxes["live_terms"]) {
		t.Fatalf("gauge max family: %+v", g)
	}

	h := fams["gfre_peak_terms"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family: %+v", h)
	}
	hs := snap.Histograms["peak_terms"]
	// Each exported Bound must appear as a bucket whose cumulative count is
	// the sum of bucket counts up to it.
	cum := int64(0)
	bucketByLe := map[string]float64{}
	for _, s := range h.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			bucketByLe[s.Labels["le"]] = s.Value
		}
	}
	for _, b := range hs.Bounds {
		cum += b.Count
		got, ok := bucketByLe[strconv.FormatInt(b.Le, 10)]
		if !ok {
			t.Fatalf("bucket le=%d missing from exposition", b.Le)
		}
		if got != float64(cum) {
			t.Fatalf("bucket le=%d cumulative %v, want %d", b.Le, got, cum)
		}
		// Bounds and the legacy map must agree bucket by bucket.
		if hs.Buckets[b.Le] != b.Count {
			t.Fatalf("Bounds/Buckets disagree at le=%d: %d vs %d", b.Le, b.Count, hs.Buckets[b.Le])
		}
	}
	if bucketByLe["+Inf"] != float64(hs.Count) {
		t.Fatalf("+Inf bucket %v != count %d", bucketByLe["+Inf"], hs.Count)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []string{
		"orphan_sample 1\n",                                                   // no TYPE
		"# TYPE x counter\nx notanumber\n",                                    // bad value
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",               // no +Inf
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n", // not cumulative
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n",            // +Inf != count
	}
	for _, src := range cases {
		if _, err := ParsePrometheusText(strings.NewReader(src)); err == nil {
			t.Fatalf("parser accepted malformed exposition:\n%s", src)
		}
	}
}

// TestPrometheusFileScrape validates a scraped /metrics body saved to the
// file named by GFRE_PROM_FILE — the CI smoke job curls a live gfred and
// runs exactly this test against the capture.
func TestPrometheusFileScrape(t *testing.T) {
	path := os.Getenv("GFRE_PROM_FILE")
	if path == "" {
		t.Skip("GFRE_PROM_FILE not set (CI scrape validation only)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ParsePrometheusText(f)
	if err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("scraped exposition has no metric families")
	}
	for _, want := range []string{"gfre_jobs_submitted_total", "gfre_queue_depth"} {
		if fams[want] == nil {
			t.Fatalf("scrape lacks %s; families: %d", want, len(fams))
		}
	}
}
