// Package obs is the zero-dependency telemetry layer of the extraction
// pipeline: phase spans, a lock-cheap metrics registry, and pluggable event
// sinks (NDJSON stream, live progress ticker, in-memory capture).
//
// The paper's entire cost story — Figure 4's per-bit runtime profile, the
// runtime and Mem columns of Tables I–IV — is about where time and memory go
// during backward rewriting. A *Recorder threaded through rewrite.Options /
// extract.Options surfaces those quantities live instead of post hoc:
//
//	rec := obs.NewRecorder(obs.NewProgressSink(os.Stderr))
//	stop := rec.StartHeapSampler(0)
//	ext, err := extract.IrreduciblePolynomial(n, extract.Options{Recorder: rec})
//	stop()
//	rec.Close()
//
// A nil *Recorder is fully usable: every method no-ops, and the instrumented
// hot paths hold pre-fetched nil metric handles whose methods also no-op, so
// the uninstrumented pipeline pays a single predictable branch per event
// site (< 2% on the extraction benchmarks).
//
// Event schema (one JSON object per line in the NDJSON sink):
//
//	{"ts":0.0012,"ev":"span_start","name":"rewrite","v":{"bits":16,"threads":8}}
//	{"ts":0.0013,"ev":"bit_start","name":"z3","v":{"bit":3}}
//	{"ts":0.0051,"ev":"bit_finish","name":"z3","v":{"bit":3,"cone":120,
//	    "subst":116,"peak":257,"final":31,"cancelled":180,"dur_ns":3812345}}
//	{"ts":0.0920,"ev":"span_end","name":"rewrite","v":{"dur_ns":91834021}}
//	{"ts":0.1001,"ev":"heap","v":{"heap_bytes":8437760,"watermark":9125888}}
//
// ts is seconds since the recorder was created. Well-known span names, in
// pipeline order: parse, cone-sort, rewrite, extract, golden-model, verify,
// plus consensus / localize on the fault-tolerant path and opt.simplify /
// opt.balance-xor / opt.techmap / opt.sweep inside the synthesis flow.
// Well-known metrics: substitutions, cancellations (mod-2 eliminations),
// live_terms (gauge; watermark = peak resident terms), workers_busy (gauge),
// bits_done, cone_sort_ns, heap_bytes (gauge; watermark = heap high-water
// from runtime.ReadMemStats), the peak_terms / bit_dur_ns histograms, and
// the resource-governance counters cone_retries (budget aborts re-attempted
// under the alternative substitution order) and cone_aborts (cones ended
// without an expression). Each abort additionally emits a cone_abort event
// whose name is the abort status (budget / timeout / panic / cancelled /
// error) and whose payload carries bit, cone_gates, substitutions and
// peak_terms at the moment the governor stopped the cone.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Event is one telemetry record. Numeric payload lives in V so the schema
// stays uniform across event types; absent keys mean "not applicable".
type Event struct {
	// TS is seconds since the recorder started.
	TS float64 `json:"ts"`
	// Ev is the event type: span_start, span_end, bit_start, bit_finish,
	// heap, or metric.
	Ev string `json:"ev"`
	// Name is the span name, output-bit name, or metric name.
	Name string `json:"name,omitempty"`
	// V carries the numeric payload (counts, durations in ns, byte sizes).
	V map[string]int64 `json:"v,omitempty"`
}

// Event types.
const (
	EvSpanStart = "span_start"
	EvSpanEnd   = "span_end"
	EvBitStart  = "bit_start"
	EvBitFinish = "bit_finish"
	EvHeap      = "heap"
)

// Sink consumes telemetry events. Emit must be safe for concurrent use;
// the worker pool calls it from every rewriting goroutine.
//
// The flush contract: a sink may buffer (NDJSONSink does, behind a
// bufio.Writer), so emitted events are NOT durable until Flush returns.
// Recorder.Close flushes every sink exactly for this reason — a process
// that exits without calling it silently truncates its telemetry stream.
// Both gfre and gfred therefore defer Recorder.Close at the top of run(),
// before any code that can fail, so records written ahead of an error,
// a signal, or a resource abort still reach disk.
type Sink interface {
	Emit(Event)
	// Flush drains any buffered events and reports the first write or
	// encoding error. It must be idempotent: Recorder.Close may run more
	// than once (deferred close plus an explicit one).
	Flush() error
}

// SpanRecord is one completed phase with its wall-clock cost — the
// phase-timing breakdown exported into JSON reports.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"` // offset from recorder start
	Duration time.Duration `json:"dur_ns"`
}

// Recorder is the telemetry hub: it owns the metrics registry, fans events
// out to sinks, and remembers completed spans. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Recorder struct {
	start    time.Time
	registry *Registry

	mu    sync.Mutex
	sinks []Sink
	spans []SpanRecord
}

// NewRecorder returns a recorder fanning out to the given sinks (none is
// valid: spans and metrics are still captured for Spans/Snapshot).
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{
		start:    time.Now(),
		registry: NewRegistry(),
		sinks:    sinks,
	}
}

// AttachSink adds a sink; events emitted earlier are not replayed.
func (r *Recorder) AttachSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// Metrics returns the recorder's registry. On a nil recorder it returns a
// nil registry whose Counter/Gauge/Histogram methods return no-op handles.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Snapshot copies the current value of every metric.
func (r *Recorder) Snapshot() Snapshot { return r.Metrics().Snapshot() }

// Elapsed is the time since the recorder was created.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Emit forwards an event (with its timestamp filled in) to every sink.
func (r *Recorder) Emit(ev string, name string, v map[string]int64) {
	if r == nil {
		return
	}
	e := Event{TS: time.Since(r.start).Seconds(), Ev: ev, Name: name, V: v}
	r.mu.Lock()
	sinks := r.sinks
	r.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Span is an in-flight phase timing; obtain with StartSpan, finish with End.
// A nil Span (from a nil Recorder) is valid and End is a no-op.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
}

// StartSpan opens a phase span and emits a span_start event. The extra
// payload v (may be nil) is attached to the start event.
func (r *Recorder) StartSpan(name string, v map[string]int64) *Span {
	if r == nil {
		return nil
	}
	r.Emit(EvSpanStart, name, v)
	return &Span{r: r, name: name, start: time.Now()}
}

// End closes the span, records it for Spans(), emits a span_end event, and
// returns the span's duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.recordSpan(SpanRecord{Name: s.name, Start: s.start.Sub(s.r.start), Duration: d})
	s.r.Emit(EvSpanEnd, s.name, map[string]int64{"dur_ns": int64(d)})
	return d
}

// RecordSpan records an already-measured phase (used for phases whose cost
// is accumulated across workers rather than bracketed on one goroutine,
// like the per-bit cone sorts; the duration is then CPU time summed over
// workers, not wall time).
func (r *Recorder) RecordSpan(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.recordSpan(SpanRecord{Name: name, Start: time.Since(r.start) - d, Duration: d})
	r.Emit(EvSpanEnd, name, map[string]int64{"dur_ns": int64(d)})
}

func (r *Recorder) recordSpan(sr SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, sr)
	r.mu.Unlock()
}

// Spans returns every completed span in completion order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// BitStart announces that an output bit began rewriting.
func (r *Recorder) BitStart(bit int, name string) {
	if r == nil {
		return
	}
	r.Emit(EvBitStart, name, map[string]int64{"bit": int64(bit)})
}

// BitStats is the payload of a bit_finish event.
type BitStats struct {
	Bit           int
	Name          string
	ConeGates     int
	Substitutions int
	PeakTerms     int
	FinalTerms    int
	Cancelled     int
	Duration      time.Duration
}

// BitFinish announces that an output bit completed, with its cost counters.
func (r *Recorder) BitFinish(bs BitStats) {
	if r == nil {
		return
	}
	r.Metrics().Counter("bits_done").Inc()
	r.Metrics().Histogram("peak_terms").Observe(int64(bs.PeakTerms))
	r.Metrics().Histogram("bit_dur_ns").Observe(int64(bs.Duration))
	r.Emit(EvBitFinish, bs.Name, map[string]int64{
		"bit":       int64(bs.Bit),
		"cone":      int64(bs.ConeGates),
		"subst":     int64(bs.Substitutions),
		"peak":      int64(bs.PeakTerms),
		"final":     int64(bs.FinalTerms),
		"cancelled": int64(bs.Cancelled),
		"dur_ns":    int64(bs.Duration),
	})
}

// SampleHeap reads runtime.ReadMemStats once into the heap_bytes gauge
// (its watermark is the run's heap high-water mark) and emits a heap event.
func (r *Recorder) SampleHeap() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := r.Metrics().Gauge("heap_bytes")
	g.Set(int64(ms.HeapAlloc))
	r.Emit(EvHeap, "", map[string]int64{
		"heap_bytes": int64(ms.HeapAlloc),
		"watermark":  g.Max(),
	})
}

// StartHeapSampler samples the heap every interval (default 250ms) on a
// background goroutine until the returned stop function is called. Note
// runtime.ReadMemStats briefly stops the world, so intervals far below the
// default will themselves perturb the measurement.
func (r *Recorder) StartHeapSampler(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.SampleHeap()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			r.SampleHeap() // final sample so short runs record at least one
		})
	}
}

// Close flushes every sink (first flush error wins). It is idempotent and
// nil-safe, and it is the durability point for buffered sinks: defer it on
// every exit path (see the Sink flush contract).
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sinks := r.sinks
	r.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
