// Package obs is the zero-dependency telemetry layer of the extraction
// pipeline: hierarchical trace spans, a lock-cheap metrics registry, a
// bounded event journal with replay, and pluggable event sinks (NDJSON
// stream, live progress ticker, in-memory capture).
//
// The paper's entire cost story — Figure 4's per-bit runtime profile, the
// runtime and Mem columns of Tables I–IV — is about where time and memory go
// during backward rewriting. A *Recorder threaded through rewrite.Options /
// extract.Options surfaces those quantities live instead of post hoc:
//
//	rec := obs.NewRecorder(obs.NewProgressSink(os.Stderr))
//	stop := rec.StartHeapSampler(0)
//	ext, err := extract.IrreduciblePolynomial(n, extract.Options{Recorder: rec})
//	stop()
//	rec.Close()
//
// A nil *Recorder is fully usable: every method no-ops, and the instrumented
// hot paths hold pre-fetched nil metric handles whose methods also no-op, so
// the uninstrumented pipeline pays a single predictable branch per event
// site (< 2% on the extraction benchmarks).
//
// Event schema (one JSON object per line in the NDJSON sink):
//
//	{"ts":0.0012,"ev":"span_start","name":"rewrite","span":3,"parent":1,
//	    "v":{"bits":16,"threads":8}}
//	{"ts":0.0013,"ev":"bit_start","name":"z3","v":{"bit":3}}
//	{"ts":0.0051,"ev":"bit_finish","name":"z3","v":{"bit":3,"cone":120,
//	    "subst":116,"peak":257,"final":31,"cancelled":180,"dur_ns":3812345}}
//	{"ts":0.0920,"ev":"span_end","name":"rewrite","span":3,"parent":1,
//	    "v":{"dur_ns":91834021}}
//	{"ts":0.1001,"ev":"heap","v":{"heap_bytes":8437760,"watermark":9125888}}
//
// ts is seconds since the recorder was created. span/parent are span IDs:
// spans form a tree (extraction → parse / preflight / rewrite → per-cone
// children → extract / golden-model / verify), rendered by TraceTree.
// Events flowing through a Journal additionally carry a monotonic seq, the
// resume cursor for SSE streaming; events from a per-job recorder (see
// JobRecorder) carry the job ID in job.
//
// Well-known span names, in pipeline order: extraction, parse, preflight,
// cone-sort, rewrite (with per-cone children named after the output bit),
// extract, golden-model, verify, plus consensus / localize on the
// fault-tolerant path and opt.simplify / opt.balance-xor / opt.techmap /
// opt.sweep inside the synthesis flow.
// Well-known metrics: substitutions, cancellations (mod-2 eliminations),
// live_terms (gauge; watermark = peak resident terms), workers_busy (gauge),
// bits_done, cone_sort_ns, heap_bytes (gauge; watermark = heap high-water
// from runtime.ReadMemStats), the peak_terms / bit_dur_ns histograms, and
// the resource-governance counters cone_retries (budget aborts re-attempted
// under the alternative substitution order) and cone_aborts (cones ended
// without an expression). Each abort additionally emits a cone_abort event
// whose name is the abort status (budget / timeout / panic / cancelled /
// error) and whose payload carries bit, cone_gates, substitutions and
// peak_terms at the moment the governor stopped the cone. When the anomaly
// stage is armed (EnableConeAnomalies), cones whose actual peak approaches
// or exceeds the statically predicted no-cancellation bound emit
// cone_anomaly events and bump the cone_anomalies counter.
//
// The sharded scheduler (internal/shard) adds the lease lifecycle events
// lease_grant / lease_expire / lease_steal / cone_leased / shard_result
// (see the Ev constants) and the metrics leases_granted, leases_renewed,
// leases_expired, leases_stolen, leases_active (gauge),
// shard_results_accepted, shard_results_fenced, shard_results_duplicate,
// shard_cones_requeued, shard_cones_cached and shard_cones_pending
// (gauge). The gfred spool adds spool_corrupt, counting quarantined
// entries skipped during restart replay.
package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one telemetry record. Numeric payload lives in V so the schema
// stays uniform across event types; absent keys mean "not applicable".
type Event struct {
	// Seq is the journal sequence number: assigned when the event passes
	// through a Journal sink, 0 before that. Strictly monotonic per journal;
	// the Last-Event-ID cursor of the SSE stream.
	Seq uint64 `json:"seq,omitempty"`
	// TS is seconds since the recorder started.
	TS float64 `json:"ts"`
	// Ev is the event type: span_start, span_end, bit_start, bit_finish,
	// heap, cone_abort, cone_anomaly, or a service event (job_*, drain_*).
	Ev string `json:"ev"`
	// Name is the span name, output-bit name, or metric name.
	Name string `json:"name,omitempty"`
	// Job tags events emitted on behalf of one service job (see JobRecorder);
	// empty for process-wide telemetry.
	Job string `json:"job,omitempty"`
	// Span and Parent are trace-span IDs on span_start/span_end events,
	// linking each span into the trace tree. 0 means "no span" / root.
	Span   int64 `json:"span,omitempty"`
	Parent int64 `json:"parent,omitempty"`
	// V carries the numeric payload (counts, durations in ns, byte sizes).
	V map[string]int64 `json:"v,omitempty"`
}

// Event types.
const (
	EvSpanStart   = "span_start"
	EvSpanEnd     = "span_end"
	EvBitStart    = "bit_start"
	EvBitFinish   = "bit_finish"
	EvHeap        = "heap"
	EvConeAnomaly = "cone_anomaly"

	// Lease lifecycle events of the sharded scheduler (internal/shard).
	// Name carries the lease ID; payloads carry epoch plus cone counts
	// (lease_grant/lease_expire/lease_steal) or the per-cone bit
	// (cone_leased, which drives the gftop lease heat grid). shard_result
	// summarizes one submission: accepted/duplicate/fenced/failed counts.
	EvLeaseGrant  = "lease_grant"
	EvLeaseExpire = "lease_expire"
	EvLeaseSteal  = "lease_steal"
	EvConeLeased  = "cone_leased"
	EvShardResult = "shard_result"
)

// Sink consumes telemetry events. Emit must be safe for concurrent use;
// the worker pool calls it from every rewriting goroutine.
//
// The flush contract: a sink may buffer (NDJSONSink does, behind a
// bufio.Writer), so emitted events are NOT durable until Flush returns.
// Recorder.Close flushes every sink exactly for this reason — a process
// that exits without calling it silently truncates its telemetry stream.
// Both gfre and gfred therefore defer Recorder.Close at the top of run(),
// before any code that can fail, so records written ahead of an error,
// a signal, or a resource abort still reach disk.
type Sink interface {
	Emit(Event)
	// Flush drains any buffered events and reports the first write or
	// encoding error. It must be idempotent: Recorder.Close may run more
	// than once (deferred close plus an explicit one).
	Flush() error
}

// SpanRecord is one completed phase with its wall-clock cost — the
// phase-timing breakdown exported into JSON reports. ID/Parent link the
// record into the trace tree (see TraceTree); Attrs carries whatever the
// span closed with (per-cone peak terms, retries, ...), Status the budget
// verdict of governed cones ("" = ok).
type SpanRecord struct {
	Name     string           `json:"name"`
	Start    time.Duration    `json:"start_ns"` // offset from recorder start
	Duration time.Duration    `json:"dur_ns"`
	ID       int64            `json:"id,omitempty"`
	Parent   int64            `json:"parent,omitempty"`
	Status   string           `json:"status,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
}

// Recorder is the telemetry hub: it owns the metrics registry, fans events
// out to sinks, and remembers completed spans. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Recorder struct {
	start    time.Time
	registry *Registry
	job      string        // stamped into every event (JobRecorder children)
	ids      *atomic.Int64 // span-ID allocator, shared across JobRecorder children

	// emitMu serializes sink delivery, and with it the AttachSink back-fill:
	// a newly attached sink sees every journaled event exactly once, in
	// order, because no Emit can interleave with the replay.
	emitMu  sync.Mutex
	sinks   []Sink
	journal *Journal // first Journal among sinks, if any (back-fill source)

	mu    sync.Mutex
	spans []SpanRecord
	open  []*Span // stack of StartSpan-opened phase spans (nesting context)
	anom  *anomalyDetector
}

// NewRecorder returns a recorder fanning out to the given sinks (none is
// valid: spans and metrics are still captured for Spans/Snapshot). If one of
// the sinks is a *Journal it becomes the recorder's replay buffer, backing
// AttachSink's tail back-fill.
func NewRecorder(sinks ...Sink) *Recorder {
	r := &Recorder{
		start:    time.Now(),
		registry: NewRegistry(),
		ids:      new(atomic.Int64),
		sinks:    sinks,
	}
	for _, s := range sinks {
		if j, ok := s.(*Journal); ok {
			r.journal = j
			break
		}
	}
	return r
}

// AttachSink adds a sink. When the recorder has a Journal among its sinks,
// the journal's buffered tail is replayed into the new sink first, so late
// subscribers (an SSE stream, a dashboard) observe the same prefix of the
// event stream as everyone else — in order, with no gap and no overlap.
// Without a journal, events emitted before AttachSink are not replayed.
func (r *Recorder) AttachSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	if r.journal != nil {
		tail, _ := r.journal.ReplaySince(0)
		for _, e := range tail {
			s.Emit(e)
		}
	}
	if j, ok := s.(*Journal); ok && r.journal == nil {
		r.journal = j
	}
	r.sinks = append(r.sinks, s)
}

// Journal returns the recorder's replay buffer: the first *Journal among
// its sinks, or nil.
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	return r.journal
}

// JobRecorder returns a child recorder that stamps every event with the job
// ID. The child shares the parent's metrics registry, sink set (as of this
// call), span-ID allocator and time base, but keeps its own span list and
// nesting stack, so concurrent jobs build independent trace trees over one
// journal. A nil parent yields a nil (fully usable) child.
func (r *Recorder) JobRecorder(job string) *Recorder {
	if r == nil {
		return nil
	}
	r.emitMu.Lock()
	sinks := append([]Sink(nil), r.sinks...)
	j := r.journal
	r.emitMu.Unlock()
	return &Recorder{
		start:    r.start,
		registry: r.registry,
		job:      job,
		ids:      r.ids,
		sinks:    sinks,
		journal:  j,
	}
}

// Metrics returns the recorder's registry. On a nil recorder it returns a
// nil registry whose Counter/Gauge/Histogram methods return no-op handles.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Snapshot copies the current value of every metric.
func (r *Recorder) Snapshot() Snapshot { return r.Metrics().Snapshot() }

// Elapsed is the time since the recorder was created.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Emit forwards an event (with its timestamp filled in) to every sink.
func (r *Recorder) Emit(ev string, name string, v map[string]int64) {
	if r == nil {
		return
	}
	r.emitEvent(Event{Ev: ev, Name: name, V: v})
}

// EmitJob is Emit with an explicit job tag, for process-wide recorders
// reporting on behalf of a job (queue lifecycle events).
func (r *Recorder) EmitJob(job, ev, name string, v map[string]int64) {
	if r == nil {
		return
	}
	r.emitEvent(Event{Ev: ev, Name: name, Job: job, V: v})
}

// emitEvent stamps the timestamp and job tag and delivers to every sink
// under emitMu (see AttachSink for why delivery is serialized).
func (r *Recorder) emitEvent(e Event) {
	e.TS = time.Since(r.start).Seconds()
	if e.Job == "" {
		e.Job = r.job
	}
	r.emitMu.Lock()
	for _, s := range r.sinks {
		s.Emit(e)
	}
	r.emitMu.Unlock()
}

// Span is an in-flight trace span; obtain with StartSpan or Child, finish
// with End/EndWith. A nil Span (from a nil Recorder) is valid and every
// method is a no-op. Spans carry per-span attributes (terms-peak, retries,
// budget verdict, ...) into their SpanRecord and span_end event.
type Span struct {
	r      *Recorder
	name   string
	start  time.Time
	id     int64
	parent int64

	mu     sync.Mutex
	attrs  map[string]int64
	status string
	ended  bool
}

// newSpan allocates a span with a fresh ID under the given parent.
func (r *Recorder) newSpan(name string, parent int64) *Span {
	return &Span{r: r, name: name, start: time.Now(), id: r.ids.Add(1), parent: parent}
}

// StartSpan opens a phase span and emits a span_start event. The extra
// payload v (may be nil) is attached to the start event. Phase spans nest
// lexically: a StartSpan issued while another phase span is open becomes its
// child (the stack discipline matches the pipeline's sequential phases). Use
// Span.Child for concurrent children (per-cone spans under rewrite).
func (r *Recorder) StartSpan(name string, v map[string]int64) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	parent := int64(0)
	if n := len(r.open); n > 0 {
		parent = r.open[n-1].id
	}
	s := r.newSpan(name, parent)
	r.open = append(r.open, s)
	r.mu.Unlock()
	r.emitEvent(Event{Ev: EvSpanStart, Name: name, Span: s.id, Parent: s.parent, V: v})
	return s
}

// Child opens a concurrent child span under s. Unlike StartSpan it does not
// enter the nesting stack, so workers can open per-cone children of the
// rewrite span from any goroutine without racing the phase structure.
func (s *Span) Child(name string, v map[string]int64) *Span {
	if s == nil {
		return nil
	}
	c := s.r.newSpan(name, s.id)
	s.r.emitEvent(Event{Ev: EvSpanStart, Name: name, Span: c.id, Parent: c.parent, V: v})
	return c
}

// SetAttr attaches a key to the span's attributes, surfaced in its
// SpanRecord and span_end event.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// SetStatus records the span's outcome (a cone's budget verdict: ok,
// budget, timeout, panic, cancelled, error). Empty means ok.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// End closes the span, records it for Spans(), emits a span_end event, and
// returns the span's duration. Idempotent: only the first End counts.
func (s *Span) End() time.Duration { return s.EndWith(nil) }

// EndWith is End with final attributes merged in (per-cone peak terms,
// substitution count, retries, ...). The attributes ride on both the
// SpanRecord and the span_end event's payload next to dur_ns.
func (s *Span) EndWith(attrs map[string]int64) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	for k, v := range attrs {
		if s.attrs == nil {
			s.attrs = make(map[string]int64, len(attrs))
		}
		s.attrs[k] = v
	}
	final := s.attrs
	status := s.status
	s.mu.Unlock()

	d := time.Since(s.start)
	s.r.popOpen(s)
	s.r.recordSpan(SpanRecord{
		Name: s.name, Start: s.start.Sub(s.r.start), Duration: d,
		ID: s.id, Parent: s.parent, Status: status, Attrs: final,
	})
	v := map[string]int64{"dur_ns": int64(d)}
	for k, av := range final {
		v[k] = av
	}
	s.r.emitEvent(Event{Ev: EvSpanEnd, Name: s.name, Span: s.id, Parent: s.parent, V: v})
	return d
}

// popOpen removes s from the phase-nesting stack (top-down search: phase
// spans close in LIFO order; Child spans were never pushed).
func (r *Recorder) popOpen(s *Span) {
	r.mu.Lock()
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] == s {
			r.open = append(r.open[:i], r.open[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// RecordSpan records an already-measured phase (used for phases whose cost
// is accumulated across workers rather than bracketed on one goroutine,
// like the per-bit cone sorts; the duration is then CPU time summed over
// workers, not wall time). The record parents under the innermost open
// phase span.
func (r *Recorder) RecordSpan(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	parent := int64(0)
	if n := len(r.open); n > 0 {
		parent = r.open[n-1].id
	}
	id := r.ids.Add(1)
	r.mu.Unlock()
	r.recordSpan(SpanRecord{Name: name, Start: time.Since(r.start) - d, Duration: d,
		ID: id, Parent: parent})
	r.emitEvent(Event{Ev: EvSpanEnd, Name: name, Span: id, Parent: parent,
		V: map[string]int64{"dur_ns": int64(d)}})
}

func (r *Recorder) recordSpan(sr SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, sr)
	r.mu.Unlock()
}

// Spans returns every completed span in completion order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// BitStart announces that an output bit began rewriting.
func (r *Recorder) BitStart(bit int, name string) {
	if r == nil {
		return
	}
	r.Emit(EvBitStart, name, map[string]int64{"bit": int64(bit)})
}

// BitStats is the payload of a bit_finish event.
type BitStats struct {
	Bit           int
	Name          string
	ConeGates     int
	Substitutions int
	PeakTerms     int
	FinalTerms    int
	Cancelled     int
	Duration      time.Duration
}

// BitFinish announces that an output bit completed, with its cost counters.
// When the anomaly stage is armed (EnableConeAnomalies) the bit's actual
// peak is compared against its predicted cost here.
func (r *Recorder) BitFinish(bs BitStats) {
	if r == nil {
		return
	}
	r.Metrics().Counter("bits_done").Inc()
	r.Metrics().Histogram("peak_terms").Observe(int64(bs.PeakTerms))
	r.Metrics().Histogram("bit_dur_ns").Observe(int64(bs.Duration))
	r.Emit(EvBitFinish, bs.Name, map[string]int64{
		"bit":       int64(bs.Bit),
		"cone":      int64(bs.ConeGates),
		"subst":     int64(bs.Substitutions),
		"peak":      int64(bs.PeakTerms),
		"final":     int64(bs.FinalTerms),
		"cancelled": int64(bs.Cancelled),
		"dur_ns":    int64(bs.Duration),
	})
	r.checkConeAnomaly(bs)
}

// SampleHeap reads runtime.ReadMemStats once into the heap_bytes gauge
// (its watermark is the run's heap high-water mark) and emits a heap event.
func (r *Recorder) SampleHeap() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := r.Metrics().Gauge("heap_bytes")
	g.Set(int64(ms.HeapAlloc))
	r.Emit(EvHeap, "", map[string]int64{
		"heap_bytes": int64(ms.HeapAlloc),
		"watermark":  g.Max(),
	})
}

// StartHeapSampler samples the heap every interval (default 250ms) on a
// background goroutine until the returned stop function is called. Note
// runtime.ReadMemStats briefly stops the world, so intervals far below the
// default will themselves perturb the measurement.
func (r *Recorder) StartHeapSampler(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.SampleHeap()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			r.SampleHeap() // final sample so short runs record at least one
		})
	}
}

// Close flushes every sink (first flush error wins). It is idempotent and
// nil-safe, and it is the durability point for buffered sinks: defer it on
// every exit path (see the Sink flush contract).
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.emitMu.Lock()
	sinks := append([]Sink(nil), r.sinks...)
	r.emitMu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
