package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestJournalSeqAndReplay(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Emit(Event{Ev: "e", Name: fmt.Sprintf("n%d", i)})
	}
	if j.LastSeq() != 5 || j.OldestSeq() != 1 {
		t.Fatalf("seq range [%d,%d], want [1,5]", j.OldestSeq(), j.LastSeq())
	}
	evs, trunc := j.ReplaySince(0)
	if trunc || len(evs) != 5 {
		t.Fatalf("full replay: %d events, truncated=%v", len(evs), trunc)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	evs, trunc = j.ReplaySince(3)
	if trunc || len(evs) != 2 || evs[0].Seq != 4 {
		t.Fatalf("partial replay from 3: %+v truncated=%v", evs, trunc)
	}
	evs, trunc = j.ReplaySince(5)
	if trunc || len(evs) != 0 {
		t.Fatalf("caught-up replay: %+v truncated=%v", evs, trunc)
	}
}

func TestJournalEvictionAndTruncation(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Ev: "e"})
	}
	// Ring of 4: only seqs 7..10 retained.
	if j.OldestSeq() != 7 || j.LastSeq() != 10 {
		t.Fatalf("retained [%d,%d], want [7,10]", j.OldestSeq(), j.LastSeq())
	}
	// A consumer that saw up to 3 has a gap (4,5,6 evicted): truncated.
	evs, trunc := j.ReplaySince(3)
	if !trunc || len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("stale cursor: %d events from %d, truncated=%v", len(evs), evs[0].Seq, trunc)
	}
	// A consumer that saw up to 6 is exactly at the retention edge: no gap.
	if _, trunc := j.ReplaySince(6); trunc {
		t.Fatal("cursor at retention edge reported truncated")
	}
	// Fresh consumers (seq 0) are a connect, not a gap.
	if _, trunc := j.ReplaySince(0); trunc {
		t.Fatal("fresh cursor reported truncated")
	}
}

func TestJournalSubscribeLiveTail(t *testing.T) {
	j := NewJournal(16)
	j.Emit(Event{Ev: "before"})
	sub := j.Subscribe(4)
	defer sub.Cancel()
	j.Emit(Event{Ev: "after"})
	e := <-sub.C
	if e.Ev != "after" || e.Seq != 2 {
		t.Fatalf("live tail got %+v", e)
	}
	if j.Subscribers() != 1 {
		t.Fatalf("subscribers = %d", j.Subscribers())
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if j.Subscribers() != 0 {
		t.Fatalf("subscribers after cancel = %d", j.Subscribers())
	}
}

func TestJournalLaggingSubscriberClosed(t *testing.T) {
	j := NewJournal(16)
	sub := j.Subscribe(2)
	for i := 0; i < 5; i++ { // overflows the buffer of 2
		j.Emit(Event{Ev: "e"})
	}
	n := 0
	for range sub.C { // channel must have been closed by the lag policy
		n++
	}
	if n != 2 {
		t.Fatalf("lagging subscriber drained %d events, want 2 buffered", n)
	}
	if j.Subscribers() != 0 {
		t.Fatal("lagging subscriber still registered")
	}
	sub.Cancel() // must not panic on the already-closed channel
}

// TestAttachSinkBackfill: with a journal among the sinks, a late AttachSink
// replays the buffered tail into the new sink BEFORE live delivery resumes,
// so the late sink observes the exact same ordered prefix as an early one.
func TestAttachSinkBackfill(t *testing.T) {
	j := NewJournal(64)
	rec := NewRecorder(j)
	rec.Emit("a", "1", nil)
	rec.Emit("b", "2", nil)

	late := NewMemorySink()
	rec.AttachSink(late)
	rec.Emit("c", "3", nil)

	evs := late.Events()
	if len(evs) != 3 {
		t.Fatalf("late sink saw %d events, want 3 (2 back-filled + 1 live)", len(evs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if evs[i].Ev != want {
			t.Fatalf("event %d = %q, want %q", i, evs[i].Ev, want)
		}
	}
	// Back-filled events carry their journal seqs; the live one was stamped
	// by the journal during fan-out but the memory sink received the
	// recorder's copy (seq 0) — ordering, not numbering, is the guarantee.
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("back-filled seqs %d,%d want 1,2", evs[0].Seq, evs[1].Seq)
	}
}

// TestAttachSinkBackfillOrderingUnderLoad: the ordering guarantee the
// journal documentation makes — a sink attached mid-stream sees every event
// exactly once, in order — must hold while emitters run concurrently.
func TestAttachSinkBackfillOrderingUnderLoad(t *testing.T) {
	j := NewJournal(1 << 14)
	rec := NewRecorder(j)

	const emitters, perEmitter = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				rec.Emit("e", "x", map[string]int64{"g": int64(g), "i": int64(i)})
			}
		}(g)
	}
	late := NewMemorySink()
	rec.AttachSink(late) // races the emitters on purpose
	wg.Wait()
	rec.Emit("done", "", nil)

	evs := late.Events()
	if len(evs) != emitters*perEmitter+1 {
		t.Fatalf("late sink saw %d events, want %d", len(evs), emitters*perEmitter+1)
	}
	// Per-emitter subsequences must be in order and complete (no dup, no gap).
	next := make([]int64, emitters)
	for _, e := range evs {
		if e.Ev != "e" {
			continue
		}
		g := e.V["g"]
		if e.V["i"] != next[g] {
			t.Fatalf("emitter %d: saw i=%d, want %d", g, e.V["i"], next[g])
		}
		next[g]++
	}
	for g, n := range next {
		if n != perEmitter {
			t.Fatalf("emitter %d delivered %d/%d events", g, n, perEmitter)
		}
	}
}

func TestJournalAsRecorderSinkAssignsSeq(t *testing.T) {
	j := NewJournal(16)
	rec := NewRecorder(j)
	if rec.Journal() != j {
		t.Fatal("recorder did not adopt the journal sink")
	}
	rec.Emit("x", "", nil)
	rec.JobRecorder("job1").Emit("y", "", nil)
	evs, _ := j.ReplaySince(0)
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("journal seqs: %+v", evs)
	}
	if evs[1].Job != "job1" {
		t.Fatalf("job recorder event not tagged: %+v", evs[1])
	}
}
