package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceNode is one span in the rendered trace tree: the hierarchical view
// of a run (extraction → parse / preflight / rewrite → per-cone children →
// extract / golden-model / verify) that gfre's -trace-tree flag prints and
// the JSON report embeds.
type TraceNode struct {
	Name     string           `json:"name"`
	Start    time.Duration    `json:"start_ns"` // offset from recorder start
	Duration time.Duration    `json:"dur_ns"`
	Status   string           `json:"status,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*TraceNode     `json:"children,omitempty"`
}

// TraceTree assembles the recorder's completed spans into their parent/child
// forest, children ordered by start time. Spans whose parent never completed
// (or predates span IDs) surface as roots.
func (r *Recorder) TraceTree() []*TraceNode {
	if r == nil {
		return nil
	}
	return BuildTraceTree(r.Spans())
}

// BuildTraceTree assembles SpanRecords (e.g. decoded from a JSON report)
// into a trace forest.
func BuildTraceTree(spans []SpanRecord) []*TraceNode {
	nodes := make(map[int64]*TraceNode, len(spans))
	parents := make(map[int64]int64, len(spans))
	order := make([]int64, 0, len(spans))
	for i, sr := range spans {
		id := sr.ID
		if id == 0 {
			// Pre-trace records carry no ID; synthesize a private negative one
			// so they still render (as roots).
			id = -int64(i) - 1
		}
		nodes[id] = &TraceNode{
			Name: sr.Name, Start: sr.Start, Duration: sr.Duration,
			Status: sr.Status, Attrs: sr.Attrs,
		}
		parents[id] = sr.Parent
		order = append(order, id)
	}
	var roots []*TraceNode
	for _, id := range order {
		n := nodes[id]
		if p, ok := nodes[parents[id]]; ok && parents[id] != 0 {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*TraceNode) {
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].Start < ns[j].Start })
}

// WriteTraceTree renders the forest as an indented text tree:
//
//	extraction                          52.11ms
//	├─ preflight                         1.20ms
//	├─ rewrite                          44.03ms  bits=16 threads=8
//	│  ├─ z0                             1.10ms  peak=7 subst=12
//	│  ...
//	└─ verify                            2.51ms
func WriteTraceTree(w io.Writer, roots []*TraceNode) {
	for _, n := range roots {
		writeNode(w, n, "", "")
	}
}

func writeNode(w io.Writer, n *TraceNode, branch, indent string) {
	label := branch + n.Name
	if n.Status != "" && n.Status != "ok" {
		label += " [" + n.Status + "]"
	}
	fmt.Fprintf(w, "%-40s %12s%s\n", label,
		n.Duration.Round(10*time.Microsecond), attrString(n.Attrs))
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			writeNode(w, c, indent+"└─ ", indent+"   ")
		} else {
			writeNode(w, c, indent+"├─ ", indent+"│  ")
		}
	}
}

// attrString renders span attributes deterministically: "  k1=v1 k2=v2".
func attrString(attrs map[string]int64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		if k == "dur_ns" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := " "
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%d", k, attrs[k])
	}
	return out
}
