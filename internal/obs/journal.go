package obs

import "sync"

// Journal is a bounded ring-buffer event sink with monotonic sequence
// numbers and replay: the memory between a live telemetry stream and its
// consumers. It backs two consumption patterns at once —
//
//   - replay: ReplaySince(seq) returns the retained events after a cursor,
//     which is how an SSE client resumes from its Last-Event-ID and how
//     Recorder.AttachSink back-fills late sinks;
//   - live tail: Subscribe returns a channel fed by every subsequent Emit.
//
// The canonical consumer loop subscribes FIRST, then replays, then drains
// the subscription skipping already-seen sequence numbers — that order
// cannot lose an event, and the seq filter removes the overlap.
//
// A Journal is a Sink, so it attaches to a Recorder like any other; its
// Emit assigns the sequence number, making seq authoritative even when
// several recorders (per-job children) feed one journal. Capacity bounds
// memory: the oldest events are evicted first, and ReplaySince reports the
// truncation so consumers know to re-snapshot instead of silently missing
// history. All methods are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	buf  []Event
	head int // index of the oldest retained event
	size int
	next uint64 // last assigned sequence number (first event gets 1)

	subs  map[int]chan Event
	subID int
}

// DefaultJournalCapacity is the ring size NewJournal falls back to — enough
// for a full GF(2^571) extraction's bit events plus service chatter.
const DefaultJournalCapacity = 4096

// NewJournal returns a journal retaining up to capacity events
// (DefaultJournalCapacity when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{
		buf:  make([]Event, capacity),
		subs: make(map[int]chan Event),
	}
}

// Emit assigns the event its sequence number, stores it in the ring
// (evicting the oldest when full), and feeds every live subscriber. A
// subscriber whose channel buffer is full is lagging beyond recovery at
// this rate; its channel is closed so the consumer loop notices and
// re-enters via ReplaySince instead of silently stalling Emit.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.next++
	e.Seq = j.next
	if j.size < len(j.buf) {
		j.buf[(j.head+j.size)%len(j.buf)] = e
		j.size++
	} else {
		j.buf[j.head] = e
		j.head = (j.head + 1) % len(j.buf)
	}
	for id, ch := range j.subs {
		select {
		case ch <- e:
		default:
			close(ch)
			delete(j.subs, id)
		}
	}
	j.mu.Unlock()
}

// Flush is a no-op: the journal is the buffer.
func (j *Journal) Flush() error { return nil }

// LastSeq returns the sequence number of the most recent event (0 if none).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// OldestSeq returns the sequence number of the oldest retained event
// (0 when the journal is empty).
func (j *Journal) OldestSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.size == 0 {
		return 0
	}
	return j.buf[j.head].Seq
}

// ReplaySince returns a copy of every retained event with Seq > seq, oldest
// first. truncated reports a gap: the caller had seen up to seq, but events
// in (seq, OldestSeq) have been evicted — the consumer should re-establish
// state from a snapshot before applying the returned tail.
func (j *Journal) ReplaySince(seq uint64) (events []Event, truncated bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.size > 0 && seq > 0 && seq+1 < j.buf[j.head].Seq {
		truncated = true
	}
	if j.size == 0 && seq > 0 && seq < j.next {
		truncated = true // everything after the cursor already evicted
	}
	for i := 0; i < j.size; i++ {
		e := j.buf[(j.head+i)%len(j.buf)]
		if e.Seq > seq {
			events = append(events, e)
		}
	}
	return events, truncated
}

// Subscription is a live tail of a Journal. Receive from C; a closed C
// means the subscription lagged (or was cancelled) and the consumer should
// resubscribe and ReplaySince its last seen seq.
type Subscription struct {
	C  <-chan Event
	j  *Journal
	id int
}

// Subscribe registers a live consumer with the given channel buffer
// (default 256 when buffer <= 0). Always Cancel when done.
func (j *Journal) Subscribe(buffer int) *Subscription {
	if j == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan Event, buffer)
	j.mu.Lock()
	j.subID++
	id := j.subID
	j.subs[id] = ch
	j.mu.Unlock()
	return &Subscription{C: ch, j: j, id: id}
}

// Cancel detaches the subscription and closes its channel. Safe to call
// after a lag-close (idempotent) and on a nil subscription.
func (s *Subscription) Cancel() {
	if s == nil {
		return
	}
	s.j.mu.Lock()
	if ch, ok := s.j.subs[s.id]; ok {
		delete(s.j.subs, s.id)
		close(ch)
	}
	s.j.mu.Unlock()
}

// Subscribers returns the number of live subscriptions (test hook and
// drain diagnostics).
func (j *Journal) Subscribers() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}
