package obs

import "sort"

// The cone anomaly stage compares each finished cone's ACTUAL peak term
// count against the cost the netlint predictor computed STATICALLY before
// rewriting began. The predictor's bound is a no-cancellation worst case, so
// actual ≤ predicted always holds on well-formed multipliers — and the
// actual sits far below it, because mod-2 cancellation (the paper's central
// phenomenon, Theorem 2's per-cone independence of it) collapses the
// intermediate polynomial at almost every substitution. A cone whose actual
// peak APPROACHES its predicted bound is therefore a cone where cancellation
// failed to fire: tampered logic, a trojan payload, or a structure that is
// not field arithmetic at all. That is exactly the per-cone cost skew an
// operator must see live to steer budgets.
//
// How close is "too close" depends on the architecture: Montgomery and
// synthesized designs cancel massively (healthy ratios of a few percent),
// while Mastrovito cones track their bound exactly (a healthy ratio of
// 100%). The detector therefore anchors every verdict on the MEDIAN ratio
// of the cones finished so far — the healthy population calibrates the
// baseline, and only cones that stick out of it are flagged. The first
// MinSamples cones are a warm-up: they only feed the median, so a lone
// tampered cone among them is still caught once its ratio towers over the
// settled median of its siblings (cone order is randomized by the
// scheduler, and one outlier barely moves a median).

// AnomalyConfig tunes EnableConeAnomalies. The zero value selects defaults.
type AnomalyConfig struct {
	// MinPredicted ignores cones whose predicted peak is below this: tiny
	// cones (low output bits of a Mastrovito multiplier) trivially reach
	// their two-term bound without meaning anything. Default 256.
	MinPredicted int64
	// AbsRatio flags a cone when actual/predicted reaches it WHILE the
	// median ratio sits below it — i.e. cancellation is the norm here, and
	// this cone has essentially none. Default 0.5. Values are in (0, 1].
	// On architectures whose healthy median itself reaches AbsRatio
	// (Mastrovito cones track their bound exactly) this test self-disarms;
	// only the relative test can fire there.
	AbsRatio float64
	// RelFactor flags a cone whose ratio exceeds RelFactor times the median
	// ratio of the cones finished so far — the "one fat cone among healthy
	// siblings" signature of a localized trojan. Default 8.
	RelFactor float64
	// MinRatio is the floor under which the relative test never fires:
	// on heavy-cancellation designs healthy ratios scatter across an order
	// of magnitude around a sub-percent median, so RelFactor alone would
	// flag noise. A cone must burn at least this fraction of its bound
	// before sticking out of the median means anything. Default 0.05.
	MinRatio float64
	// MinSamples is how many cones must finish before verdicts are issued
	// (the median needs support). Cones finishing during the warm-up are
	// buffered and judged retroactively the moment the detector arms, so
	// an early-finishing tampered cone is still flagged. Default 8.
	MinSamples int
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.MinPredicted <= 0 {
		c.MinPredicted = 256
	}
	if c.AbsRatio <= 0 {
		c.AbsRatio = 0.5
	}
	if c.RelFactor <= 0 {
		c.RelFactor = 8
	}
	if c.MinRatio <= 0 {
		c.MinRatio = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// anomalyDetector holds the armed predictions and the running ratio sample.
type anomalyDetector struct {
	cfg    AnomalyConfig
	pred   map[int]int64 // output bit -> predicted peak terms
	ratios []float64     // actual/predicted of finished cones, arrival order
	warmup []coneSample  // cones finished before MinSamples, judged at arming
}

// coneSample is one finished cone awaiting (or under) an anomaly verdict.
type coneSample struct {
	bit       int
	name      string
	peak      int64
	predicted int64
	ratio     float64
}

// EnableConeAnomalies arms the anomaly stage with per-bit predicted peak
// term counts (normally netlint's ConeCost predictions, wired by the
// extract preflight). Every subsequent BitFinish compares actual vs
// predicted; anomalous cones emit a cone_anomaly event and bump the
// cone_anomalies counter. Passing an empty map disarms the stage.
func (r *Recorder) EnableConeAnomalies(pred map[int]int64, cfg AnomalyConfig) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(pred) == 0 {
		r.anom = nil
	} else {
		cp := make(map[int]int64, len(pred))
		for k, v := range pred {
			cp[k] = v
		}
		r.anom = &anomalyDetector{cfg: cfg.withDefaults(), pred: cp}
	}
	r.mu.Unlock()
}

// checkConeAnomaly runs inside BitFinish: decide under r.mu, emit outside it
// (emitEvent takes emitMu; the two locks never nest the other way).
func (r *Recorder) checkConeAnomaly(bs BitStats) {
	r.mu.Lock()
	det := r.anom
	if det == nil {
		r.mu.Unlock()
		return
	}
	predicted, ok := det.pred[bs.Bit]
	if !ok || predicted < det.cfg.MinPredicted {
		r.mu.Unlock()
		return
	}
	ratio := float64(bs.PeakTerms) / float64(predicted)
	det.ratios = append(det.ratios, ratio)
	cur := coneSample{
		bit: bs.Bit, name: bs.Name,
		peak: int64(bs.PeakTerms), predicted: predicted, ratio: ratio,
	}
	var flagged []coneSample
	var med float64
	if len(det.ratios) < det.cfg.MinSamples {
		// Warm-up: the median has no support yet. Buffer the cone; it is
		// judged retroactively the moment the detector arms.
		det.warmup = append(det.warmup, cur)
	} else {
		med = median(det.ratios)
		// At the arming moment det.warmup still holds the early finishers;
		// afterwards it is empty and only cur is judged.
		for _, c := range append(det.warmup, cur) {
			if det.cfg.anomalous(c.ratio, med) {
				flagged = append(flagged, c)
			}
		}
		det.warmup = nil
	}
	r.mu.Unlock()

	for _, c := range flagged {
		r.Metrics().Counter("cone_anomalies").Inc()
		r.Emit(EvConeAnomaly, c.name, map[string]int64{
			"bit":        int64(c.bit),
			"peak":       c.peak,
			"predicted":  c.predicted,
			"ratio_pct":  int64(c.ratio * 100),
			"median_pct": int64(med * 100),
		})
	}
}

// anomalous is the verdict rule: a cone is flagged when its ratio towers
// over the population median (RelFactor), or when it reached the absolute
// no-cancellation threshold on an architecture whose median proves that
// healthy cones do cancel (median below AbsRatio).
func (c AnomalyConfig) anomalous(ratio, med float64) bool {
	rel := med > 0 && ratio >= c.RelFactor*med && ratio >= c.MinRatio
	abs := ratio >= c.AbsRatio && med < c.AbsRatio
	return rel || abs
}

// median of a sample (0 when empty); the sample is copied, not reordered.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
