package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format, version 0.0.4 — the format every Prometheus-compatible
// scraper (Prometheus, VictoriaMetrics, Grafana Agent, ...) ingests. The
// mapping from the registry's three kinds:
//
//   - counters  → <ns>_<name>_total, TYPE counter
//   - gauges    → <ns>_<name> plus <ns>_<name>_max (the watermark), TYPE gauge
//   - histograms → <ns>_<name> with cumulative _bucket{le="..."} series over
//     the power-of-two bounds of HistogramSnapshot.Bounds, _sum and _count,
//     TYPE histogram
//
// Output is deterministic: families sort by name, buckets ascend. Metric
// names are sanitized to the [a-zA-Z0-9_:] alphabet.
func WritePrometheus(w io.Writer, s Snapshot, namespace string) error {
	bw := bufio.NewWriter(w)
	ns := sanitizeMetricName(namespace)
	if ns != "" {
		ns += "_"
	}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := ns + sanitizeMetricName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", fam, fam, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := ns + sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", fam, fam, s.Gauges[name])
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %d\n", fam, fam, s.GaugeMaxes[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fam := ns + sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		cum := int64(0)
		for _, b := range h.Bounds {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", fam, b.Le, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", fam, h.Count)
	}
	return bw.Flush()
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromSample is one parsed sample line of a text-format exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family of a parsed exposition: its TYPE and the
// samples that belong to it (for histograms that includes the _bucket,
// _sum and _count series).
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParsePrometheusText is a minimal Prometheus text-format (0.0.4) parser —
// just enough to validate our own exposition in tests and CI without any
// external dependency. It groups samples into families by TYPE declaration,
// checks that every sample belongs to a declared family (histogram samples
// may carry the _bucket/_sum/_count suffixes), that histogram bucket counts
// are cumulative and end in an le="+Inf" bucket matching _count, and that
// every value parses as a float.
func ParsePrometheusText(r io.Reader) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %q", lineNo, name)
				}
				families[name] = &PromFamily{Name: name, Type: typ}
			}
			continue // other comments are legal and ignored
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		fam := familyOf(families, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("prom: line %d: sample %q has no TYPE declaration", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogramFamily(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyOf resolves a sample name to its family, accounting for the
// histogram/summary series suffixes.
func familyOf(families map[string]*PromFamily, name string) *PromFamily {
	if f, ok := families[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, found := families[base]; found && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parsePromSample parses `name{k="v",...} value` (timestamp suffixes are
// not produced by our renderer and are rejected).
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	valueStr := strings.TrimSpace(rest)
	if valueStr == "" || strings.ContainsAny(valueStr, " \t") {
		return s, fmt.Errorf("expected exactly one value in %q", line)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `k1="v1",k2="v2"`. Escapes beyond \\, \" and \n
// are not produced by the 0.0.4 format.
func parsePromLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq <= 0 || eq+1 >= len(in) || in[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		rest := in[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", in)
		}
		labels[key] = val.String()
		in = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		in = strings.TrimSpace(in)
	}
	return labels, nil
}

// validateHistogramFamily checks the invariants Prometheus enforces at
// scrape time: cumulative non-decreasing bucket counts ordered by le, a
// trailing le="+Inf" bucket, and _count equal to the +Inf bucket.
func validateHistogramFamily(fam *PromFamily) error {
	type bucket struct {
		le    float64
		inf   bool
		count float64
	}
	var buckets []bucket
	var count float64
	var haveCount bool
	for _, s := range fam.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: histogram %s: bucket without le label", fam.Name)
			}
			b := bucket{count: s.Value}
			if le == "+Inf" {
				b.inf = true
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("prom: histogram %s: bad le %q", fam.Name, le)
				}
				b.le = v
			}
			buckets = append(buckets, b)
		case strings.HasSuffix(s.Name, "_count"):
			count, haveCount = s.Value, true
		}
	}
	if len(buckets) == 0 || !buckets[len(buckets)-1].inf {
		return fmt.Errorf("prom: histogram %s: missing le=\"+Inf\" bucket", fam.Name)
	}
	for i := 1; i < len(buckets); i++ {
		prev, cur := buckets[i-1], buckets[i]
		if !cur.inf && cur.le <= prev.le {
			return fmt.Errorf("prom: histogram %s: le not ascending at %v", fam.Name, cur.le)
		}
		if cur.count < prev.count {
			return fmt.Errorf("prom: histogram %s: bucket counts not cumulative", fam.Name)
		}
	}
	if haveCount && buckets[len(buckets)-1].count != count {
		return fmt.Errorf("prom: histogram %s: +Inf bucket %v != count %v",
			fam.Name, buckets[len(buckets)-1].count, count)
	}
	return nil
}
