package checkpoint

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

func testNetlist(t *testing.T, m int) *netlist.Netlist {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randPoly(r *rand.Rand, terms, maxVar int) anf.Poly {
	p := anf.NewPoly()
	for len(p.Monos()) < terms {
		deg := 1 + r.Intn(4)
		vars := make([]anf.Var, 0, deg)
		for i := 0; i < deg; i++ {
			vars = append(vars, anf.Var(r.Intn(maxVar)))
		}
		p.Toggle(anf.NewMono(vars...))
	}
	return p
}

func TestPackExprRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := randPoly(r, 1+r.Intn(40), 64)
		got, err := unpackExpr(packExpr(p))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(p) {
			t.Fatalf("trial %d: round trip changed the polynomial", trial)
		}
	}
	// Empty and constant-one polynomials are legitimate expressions too.
	for _, p := range []anf.Poly{anf.NewPoly(), anf.Constant(true)} {
		got, err := unpackExpr(packExpr(p))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(p) {
			t.Fatal("degenerate polynomial round trip failed")
		}
	}
}

func TestUnpackExprRejectsCorruption(t *testing.T) {
	for name, s := range map[string]string{
		"not base64":    "!!!not-base64!!!",
		"empty":         "",
		"huge count":    "/////w8=", // uvarint claiming far more terms than bytes
		"truncated":     packExpr(anf.Variable(3))[:2],
		"trailing junk": packExpr(anf.NewPoly()) + "AAAA",
	} {
		if _, err := unpackExpr(s); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("%s: got %v, want ErrCheckpoint", name, err)
		}
	}
}

func testSnapshot(t *testing.T, n *netlist.Netlist, done int) *Snapshot {
	t.Helper()
	hash, err := HashNetlist(n)
	if err != nil {
		t.Fatal(err)
	}
	outs := n.OutputNames()
	s := &Snapshot{NetlistHash: hash, NetlistName: n.Name, M: len(outs), Retries: 2}
	r := rand.New(rand.NewSource(7))
	for i, name := range outs {
		c := Cone{Bit: i, Name: name}
		if i < done {
			expr := randPoly(r, 1+r.Intn(9), 32)
			c = FromBitResult(rewrite.BitResult{
				BitStats: rewrite.BitStats{
					Bit: i, Name: name, ConeGates: 10 + i, Substitutions: 20,
					PeakTerms: 50, FinalTerms: expr.Len(), Runtime: time.Millisecond,
				},
				Expr:   expr,
				Status: rewrite.StatusOK,
			})
		}
		s.Bits = append(s.Bits, c)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	n := testNetlist(t, 8)
	s := testSnapshot(t, n, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NetlistHash != s.NetlistHash || got.M != s.M || got.Retries != s.Retries {
		t.Fatalf("header fields changed: %+v", got)
	}
	if got.DoneCones() != 5 || got.PendingCones() != 3 {
		t.Fatalf("done=%d pending=%d, want 5/3", got.DoneCones(), got.PendingCones())
	}
	for i := range s.Bits {
		want, err := s.Bits[i].BitResult()
		if err != nil {
			t.Fatal(err)
		}
		gotBR, err := got.Bits[i].BitResult()
		if err != nil {
			t.Fatal(err)
		}
		if !gotBR.Expr.Equal(want.Expr) || gotBR.Status != want.Status {
			t.Fatalf("bit %d changed across encode/decode", i)
		}
	}
}

// corrupt returns a copy of enc with one deterministic mutation applied.
func corrupt(enc []byte, mutate func([]byte)) []byte {
	c := append([]byte(nil), enc...)
	mutate(c)
	return c
}

func TestDecodeRejectsCorruption(t *testing.T) {
	n := testNetlist(t, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, testSnapshot(t, n, 2)); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	cases := map[string][]byte{
		"empty":         nil,
		"short header":  enc[:headerLen-1],
		"bad magic":     corrupt(enc, func(b []byte) { b[0] = 'X' }),
		"version skew":  corrupt(enc, func(b []byte) { binary.BigEndian.PutUint32(b[8:], Version+1) }),
		"huge length":   corrupt(enc, func(b []byte) { binary.BigEndian.PutUint64(b[12:], maxPayload+1) }),
		"short payload": enc[:len(enc)-3],
		"long payload":  append(append([]byte(nil), enc...), 0xAA),
		"crc mismatch":  corrupt(enc, func(b []byte) { b[len(b)-1] ^= 1 }),
		"payload flip":  corrupt(enc, func(b []byte) { b[headerLen+4] ^= 0x10 }),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("%s: got %v, want ErrCheckpoint", name, err)
		}
	}
}

func TestValidateRejectsStructuralDamage(t *testing.T) {
	n := testNetlist(t, 4)
	fresh := func() *Snapshot { return testSnapshot(t, n, 2) }

	for name, breakIt := range map[string]func(*Snapshot){
		"zero m":          func(s *Snapshot) { s.M = 0 },
		"short hash":      func(s *Snapshot) { s.NetlistHash = "abc" },
		"non-hex hash":    func(s *Snapshot) { s.NetlistHash = string(bytes.Repeat([]byte("z"), 64)) },
		"bit count":       func(s *Snapshot) { s.Bits = s.Bits[:len(s.Bits)-1] },
		"bit index":       func(s *Snapshot) { s.Bits[1].Bit = 3 },
		"unknown status":  func(s *Snapshot) { s.Bits[0].Status = "melted" },
		"expr on pending": func(s *Snapshot) { s.Bits[3].Expr = packExpr(anf.Variable(1)) },
		"terms mismatch":  func(s *Snapshot) { s.Bits[0].FinalTerms++ },
		"corrupt expr":    func(s *Snapshot) { s.Bits[0].Expr = "!!" },
		"duplicate mono":  func(s *Snapshot) { s.Bits[0].Expr = dupMonoExpr(); s.Bits[0].FinalTerms = 2 },
	} {
		s := fresh()
		breakIt(s)
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("%s: got %v, want ErrCheckpoint", name, err)
		}
	}
}

// dupMonoExpr hand-packs an expression whose two monomials are identical —
// something packExpr can never emit but a corrupted file can claim.
func dupMonoExpr() string {
	var raw []byte
	raw = binary.AppendUvarint(raw, 2) // two terms
	for i := 0; i < 2; i++ {
		raw = binary.AppendUvarint(raw, 1) // one variable
		raw = binary.AppendUvarint(raw, 5) // var 5
	}
	return base64.StdEncoding.EncodeToString(raw)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
	n := testNetlist(t, 8)
	s := testSnapshot(t, n, 3)
	if err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.DoneCones() != 3 {
		t.Fatalf("done=%d after reload, want 3", got.DoneCones())
	}
	// Overwrite with a later snapshot; the reader must see the new one and
	// no temp files may linger.
	s2 := testSnapshot(t, n, 6)
	if err := Save(dir, s2); err != nil {
		t.Fatal(err)
	}
	got, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.DoneCones() != 6 {
		t.Fatalf("done=%d after overwrite, want 6", got.DoneCones())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != SnapshotFile {
		t.Fatalf("directory not clean after save: %v", ents)
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	n := testNetlist(t, 4)
	if err := Save(dir, testSnapshot(t, n, 2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("truncated file: got %v, want ErrCheckpoint", err)
	}
}

func TestManagerRecordRestore(t *testing.T) {
	dir := t.TempDir()
	n := testNetlist(t, 8)

	mgr := NewManager(dir, 0) // save on every record
	if err := mgr.Begin(n); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	outs := n.OutputNames()
	want := map[int]anf.Poly{}
	for _, bit := range []int{0, 3, 5} {
		expr := randPoly(r, 1+r.Intn(9), 32)
		want[bit] = expr
		mgr.Record(rewrite.BitResult{
			BitStats: rewrite.BitStats{Bit: bit, Name: outs[bit], FinalTerms: expr.Len()},
			Expr:     expr,
			Status:   rewrite.StatusOK,
		})
	}
	// A failed cone is recorded for diagnostics but not counted done.
	mgr.Record(rewrite.BitResult{
		BitStats: rewrite.BitStats{Bit: 6, Name: outs[6]},
		Status:   rewrite.StatusBudget,
		Err:      "budget exceeded",
	})
	mgr.AddRetries(4)
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}

	// A fresh manager (a restarted process) restores the done cones.
	mgr2 := NewManager(dir, 0)
	prior, err := mgr2.Restore(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 3 {
		t.Fatalf("restored %d priors, want 3", len(prior))
	}
	for _, br := range prior {
		exp, ok := want[br.Bit]
		if !ok || !br.Expr.Equal(exp) {
			t.Fatalf("bit %d restored with the wrong expression", br.Bit)
		}
	}
	snap := mgr2.Snapshot()
	if snap.Retries != 4 {
		t.Fatalf("retries=%d survived restart, want 4", snap.Retries)
	}
	if st := snap.Bits[6].Status; st != string(rewrite.StatusBudget) {
		t.Fatalf("failed cone status %q not preserved", st)
	}
}

func TestManagerRestoreRejectsForeignNetlist(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(dir, 0)
	if err := mgr.Begin(testNetlist(t, 8)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Same output count, different structure: polytab has one default per m,
	// so build the other netlist with a different architecture.
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	other, err := gen.Montgomery(8, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(dir, 0).Restore(other); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("foreign netlist: got %v, want ErrCheckpoint", err)
	}
}

func TestManagerRestoreEmptyDirBeginsFresh(t *testing.T) {
	dir := t.TempDir()
	n := testNetlist(t, 4)
	mgr := NewManager(dir, 0)
	prior, err := mgr.Restore(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh dir produced %d priors", len(prior))
	}
	if mgr.Snapshot() == nil {
		t.Fatal("Restore on an empty dir did not Begin")
	}
}

func TestManagerThrottle(t *testing.T) {
	dir := t.TempDir()
	n := testNetlist(t, 8)
	mgr := NewManager(dir, time.Hour) // never inside this test
	if err := mgr.Begin(n); err != nil {
		t.Fatal(err)
	}
	outs := n.OutputNames()
	mgr.Record(rewrite.BitResult{
		BitStats: rewrite.BitStats{Bit: 0, Name: outs[0], FinalTerms: 1},
		Expr:     anf.Variable(1),
		Status:   rewrite.StatusOK,
	})
	// First record saves (lastSave is zero), second is throttled.
	mgr.Record(rewrite.BitResult{
		BitStats: rewrite.BitStats{Bit: 1, Name: outs[1], FinalTerms: 1},
		Expr:     anf.Variable(2),
		Status:   rewrite.StatusOK,
	})
	s, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.DoneCones() != 1 {
		t.Fatalf("throttled manager wrote %d cones, want 1", s.DoneCones())
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}
	s, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.DoneCones() != 2 {
		t.Fatalf("Sync flushed %d cones, want 2", s.DoneCones())
	}
}

func TestFinalizeMarksComplete(t *testing.T) {
	dir := t.TempDir()
	n := testNetlist(t, 8)
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(dir, 0)
	if err := mgr.Begin(n); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Finalize(p); err != nil {
		t.Fatal(err)
	}
	s, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete || s.P != p.String() {
		t.Fatalf("finalized snapshot: complete=%v p=%q", s.Complete, s.P)
	}
}
