package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzCheckpoint drives Decode over arbitrary bytes. The contract under
// test is the package's core robustness promise: a snapshot file, however
// truncated, bit-flipped or version-skewed, either decodes into a snapshot
// that round-trips losslessly, or fails with an error wrapping
// ErrCheckpoint — never a panic, never a silently wrong acceptance.
func FuzzCheckpoint(f *testing.F) {
	// Seed with a valid snapshot and targeted mutations of it, so the fuzzer
	// starts at the interesting boundary instead of random noise.
	valid := encodeSeedSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-1])
	flip := append([]byte(nil), valid...)
	flip[headerLen+2] ^= 0x40
	f.Add(flip)
	skew := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(skew[8:], Version+1)
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("Decode returned a non-ErrCheckpoint error: %v", err)
			}
			return
		}
		// Accepted input: the snapshot must be internally consistent and
		// survive a re-encode/re-decode cycle unchanged.
		if s.M != len(s.Bits) {
			t.Fatalf("accepted snapshot with m=%d but %d bits", s.M, len(s.Bits))
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatalf("re-encoding an accepted snapshot: %v", err)
		}
		s2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an accepted snapshot: %v", err)
		}
		if s2.NetlistHash != s.NetlistHash || s2.M != s.M || s2.Retries != s.Retries ||
			s2.P != s.P || s2.Complete != s.Complete {
			t.Fatal("snapshot changed across encode/decode")
		}
		for i := range s.Bits {
			if s2.Bits[i] != s.Bits[i] {
				t.Fatalf("bit %d changed across encode/decode", i)
			}
		}
	})
}

// encodeSeedSnapshot builds a small valid snapshot without touching the
// netlist generator (the fuzz engine re-runs the seed function often).
func encodeSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	hash := make([]byte, 64)
	for i := range hash {
		hash[i] = "0123456789abcdef"[i%16]
	}
	s := &Snapshot{
		NetlistHash: string(hash),
		NetlistName: "seed",
		M:           2,
		Retries:     1,
		Bits: []Cone{
			{Bit: 0, Name: "z0"},
			{Bit: 1, Name: "z1"},
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
