package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// TestCrossVersionResume pins the snapshot format across ANF-core versions:
// testdata/crossversion/snapshot.gfre was written by the string-keyed ANF
// core that predates the packed intern-table implementation (m=16
// Mastrovito over polytab.Default(16), 14 completed cones, bits 3 and 11
// never attempted). The current core must Load it, verify the netlist
// binding, unpack its expressions, adopt all 14 cones through
// rewrite.Options.Prior, and finish the remaining two bits to expressions
// identical to a from-scratch run. The fixture bytes are immutable — if
// this test fails after a checkpoint or ANF change, the code broke resume
// compatibility; fix the code, do not regenerate the fixture.
func TestCrossVersionResume(t *testing.T) {
	p, err := polytab.Default(16)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(16, p)
	if err != nil {
		t.Fatal(err)
	}

	// The fixture binds to the generator by content hash. If this fails the
	// generator's output changed, which invalidates every snapshot in the
	// field — a compatibility break in its own right.
	raw, err := os.ReadFile(filepath.Join("testdata", "crossversion", SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(dir)
	if err != nil {
		t.Fatalf("old-core snapshot no longer loads: %v", err)
	}
	hash, err := HashNetlist(n)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NetlistHash != hash {
		t.Fatalf("netlist hash drifted: fixture %s, generator now %s", snap.NetlistHash, hash)
	}
	if got := snap.DoneCones(); got != 14 {
		t.Fatalf("fixture has %d done cones, want 14", got)
	}
	for _, bit := range []int{3, 11} {
		if snap.Bits[bit].Status != "" {
			t.Fatalf("fixture bit %d should be unattempted, has status %q", bit, snap.Bits[bit].Status)
		}
	}

	// Restore through the manager exactly as a resumed extraction would.
	mgr := NewManager(dir, 0)
	prior, err := mgr.Restore(n)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(prior) != 14 {
		t.Fatalf("Restore returned %d priors, want 14", len(prior))
	}

	resumed, err := rewrite.Outputs(n, rewrite.Options{Threads: 2, Prior: prior})
	if err != nil {
		t.Fatalf("resumed rewrite: %v", err)
	}
	if resumed.Reused != 14 {
		t.Fatalf("resumed run reused %d cones, want 14", resumed.Reused)
	}

	fresh, err := rewrite.Outputs(n, rewrite.Options{Threads: 2})
	if err != nil {
		t.Fatalf("fresh rewrite: %v", err)
	}
	for i := range fresh.Bits {
		if resumed.Bits[i].Status != rewrite.StatusOK {
			t.Fatalf("bit %d: status %q", i, resumed.Bits[i].Status)
		}
		if got, want := resumed.Bits[i].Expr.String(), fresh.Bits[i].Expr.String(); got != want {
			t.Fatalf("bit %d: resumed expression diverges from fresh run\nresumed: %s\nfresh:   %s",
				i, got, want)
		}
	}
}
