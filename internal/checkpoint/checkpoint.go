// Package checkpoint makes backward rewriting survive process death.
//
// Per Theorem 2 the per-output-cone rewrites are independent, so every
// completed cone is individually meaningful: a crash, OOM kill or operator
// interrupt halfway through a GF(2^233) extraction loses nothing but the
// cones still in flight — provided the completed ones were durably recorded.
// This package is that record: a Snapshot holds the per-cone status and
// extracted ANF of every output bit, the retry state of the resource
// governor, and a content hash binding the snapshot to the exact netlist it
// was computed from.
//
// Snapshots are written crash-safely: encode to a temp file in the target
// directory, fsync, atomically rename over the previous snapshot, fsync the
// directory. A reader therefore sees either the old snapshot or the new one,
// never a torn write. The file format is a fixed header (magic, version,
// payload length, CRC-32 of the payload) followed by a JSON payload whose
// per-bit expressions are varint-packed and base64-wrapped. Decode rejects
// truncated, bit-flipped or version-skewed files with ErrCheckpoint — a
// corrupt checkpoint must surface as a typed error, never as a panic or a
// silently wrong resume.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Sentinel errors; use errors.Is against them.
var (
	// ErrCheckpoint means a snapshot file exists but cannot be trusted:
	// truncated, checksum mismatch, unsupported version, malformed payload,
	// or bound to a different netlist than the one being resumed.
	ErrCheckpoint = errors.New("checkpoint: invalid snapshot")
	// ErrNoCheckpoint means no snapshot file exists in the directory — a
	// fresh start, not a failure.
	ErrNoCheckpoint = errors.New("checkpoint: no snapshot")
)

const (
	// magic opens every snapshot file.
	magic = "GFRESNAP"
	// Version is the current snapshot format version. Decode accepts only
	// this version: the format carries extracted expressions, so a lossy
	// cross-version migration could silently corrupt a resumed P(x).
	Version = 1
	// SnapshotFile is the snapshot's file name within its directory.
	SnapshotFile = "snapshot.gfre"
	// maxPayload bounds the declared payload size Decode will allocate for.
	// The largest legitimate snapshots (GF(2^571) Montgomery) stay far below
	// this; a header claiming more is corruption, not data.
	maxPayload = 1 << 30
	headerLen  = len(magic) + 4 + 8 + 4 // magic + version + length + CRC
)

// Cone is the durable record of one output cone.
type Cone struct {
	Bit    int    `json:"bit"`
	Name   string `json:"name"`
	Status string `json:"status"` // rewrite.Status; "" = never attempted
	Err    string `json:"err,omitempty"`

	ConeGates     int   `json:"cone_gates,omitempty"`
	Substitutions int   `json:"substitutions,omitempty"`
	PeakTerms     int   `json:"peak_terms,omitempty"`
	FinalTerms    int   `json:"final_terms,omitempty"`
	Cancelled     int   `json:"cancelled,omitempty"`
	RuntimeNS     int64 `json:"runtime_ns,omitempty"`

	// Expr is the varint-packed ANF of a completed cone (see packExpr);
	// empty for pending or failed cones.
	Expr string `json:"expr,omitempty"`
}

// Done reports whether the cone completed with a valid expression.
func (c Cone) Done() bool { return rewrite.Status(c.Status) == rewrite.StatusOK }

// Snapshot is the durable state of one extraction run.
type Snapshot struct {
	// NetlistHash is the hex SHA-256 of the netlist's canonical EQN
	// serialization; Restore refuses a snapshot whose hash does not match
	// the netlist being resumed.
	NetlistHash string `json:"netlist_hash"`
	// NetlistName is informational (diagnostics only).
	NetlistName string `json:"netlist_name,omitempty"`
	// M is the output count the Bits slice is indexed by.
	M int `json:"m"`
	// Retries carries the governor's retry counter across restarts.
	Retries int `json:"retries"`
	// Bits has exactly M entries, Bits[i].Bit == i.
	Bits []Cone `json:"bits"`
	// P is the recovered polynomial once extraction completed ("" before).
	P string `json:"p,omitempty"`
	// Complete marks a snapshot whose extraction finished end to end.
	Complete bool `json:"complete,omitempty"`
	// SavedUnixNS is the wall-clock time of the last save.
	SavedUnixNS int64 `json:"saved_unix_ns,omitempty"`
}

// DoneCones counts the cones that completed with a valid expression.
func (s *Snapshot) DoneCones() int {
	n := 0
	for _, c := range s.Bits {
		if c.Done() {
			n++
		}
	}
	return n
}

// PendingCones counts the cones a resumed run still has to rewrite
// (never attempted, failed, or cancelled).
func (s *Snapshot) PendingCones() int { return s.M - s.DoneCones() }

// HashNetlist computes the content hash binding snapshots to netlists: the
// hex SHA-256 of the canonical EQN serialization. Any structural change —
// a different gate, name, or port order — changes the hash. The name is
// deliberately part of the hash (field snapshots depend on it staying
// stable); consumers that re-read a serialized netlist and need the hash to
// reproduce must restore the name from the EQN header first, as
// netlist.EQNName does.
func HashNetlist(n *netlist.Netlist) (string, error) {
	h := sha256.New()
	if err := n.WriteEQN(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashSubmission computes the content-hash key the server's dedup layer
// groups identical submissions under: the hex SHA-256 of the raw netlist
// source, its format, and every extraction knob that changes the result,
// NUL-separated so no field pair can collide by concatenation. Unlike
// HashNetlist it hashes source text without parsing — it keys admissions,
// not snapshots, and must work on inputs that have not been validated yet.
func HashSubmission(source, format string, knobs ...string) string {
	h := sha256.New()
	io.WriteString(h, format) //nolint:errcheck — sha256 never errors
	h.Write([]byte{0})
	io.WriteString(h, source) //nolint:errcheck
	for _, k := range knobs {
		h.Write([]byte{0})
		io.WriteString(h, k) //nolint:errcheck
	}
	return hex.EncodeToString(h.Sum(nil))
}

// packExpr serializes an ANF polynomial: uvarint term count, then per
// monomial a uvarint variable count followed by the delta-encoded uvarint
// variables (ascending), base64-wrapped for JSON transport. The canonical
// Monos order makes the encoding deterministic.
func packExpr(p anf.Poly) string {
	monos := p.Monos()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(monos)))
	for _, m := range monos {
		vars := m.Vars()
		buf = binary.AppendUvarint(buf, uint64(len(vars)))
		prev := uint64(0)
		for _, v := range vars {
			buf = binary.AppendUvarint(buf, uint64(v)-prev)
			prev = uint64(v)
		}
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// unpackExpr reverses packExpr, validating structure as it reads.
func unpackExpr(s string) (anf.Poly, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return anf.Poly{}, fmt.Errorf("%w: expression not base64: %v", ErrCheckpoint, err)
	}
	r := bytes.NewReader(raw)
	nTerms, err := binary.ReadUvarint(r)
	if err != nil {
		return anf.Poly{}, fmt.Errorf("%w: truncated expression", ErrCheckpoint)
	}
	if nTerms > uint64(len(raw))+1 {
		// Every term costs at least one byte; a larger claim is corruption.
		return anf.Poly{}, fmt.Errorf("%w: expression claims %d terms in %d bytes", ErrCheckpoint, nTerms, len(raw))
	}
	p := anf.NewPoly()
	vars := make([]anf.Var, 0, 8)
	for t := uint64(0); t < nTerms; t++ {
		nVars, err := binary.ReadUvarint(r)
		if err != nil {
			return anf.Poly{}, fmt.Errorf("%w: truncated expression", ErrCheckpoint)
		}
		if nVars > uint64(len(raw)) {
			return anf.Poly{}, fmt.Errorf("%w: monomial claims %d variables", ErrCheckpoint, nVars)
		}
		vars = vars[:0]
		prev := uint64(0)
		for v := uint64(0); v < nVars; v++ {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return anf.Poly{}, fmt.Errorf("%w: truncated expression", ErrCheckpoint)
			}
			prev += d
			if prev > 1<<32-1 {
				return anf.Poly{}, fmt.Errorf("%w: variable id %d overflows", ErrCheckpoint, prev)
			}
			vars = append(vars, anf.Var(prev))
		}
		m := anf.NewMono(vars...)
		if p.Contains(m) {
			return anf.Poly{}, fmt.Errorf("%w: duplicate monomial in expression", ErrCheckpoint)
		}
		p.Toggle(m)
	}
	if r.Len() != 0 {
		return anf.Poly{}, fmt.Errorf("%w: %d trailing bytes after expression", ErrCheckpoint, r.Len())
	}
	return p, nil
}

// FromBitResult converts a completed (or failed) rewrite result into its
// durable form.
func FromBitResult(br rewrite.BitResult) Cone {
	c := Cone{
		Bit:           br.Bit,
		Name:          br.Name,
		Status:        string(br.Status),
		Err:           br.Err,
		ConeGates:     br.ConeGates,
		Substitutions: br.Substitutions,
		PeakTerms:     br.PeakTerms,
		FinalTerms:    br.FinalTerms,
		Cancelled:     br.Cancelled,
		RuntimeNS:     int64(br.Runtime),
	}
	if br.Status == rewrite.StatusOK {
		c.Expr = packExpr(br.Expr)
	}
	return c
}

// BitResult converts a durable cone back into the rewriting engine's form.
// Only Done cones carry an expression.
func (c Cone) BitResult() (rewrite.BitResult, error) {
	br := rewrite.BitResult{
		BitStats: rewrite.BitStats{
			Bit:           c.Bit,
			Name:          c.Name,
			ConeGates:     c.ConeGates,
			Substitutions: c.Substitutions,
			PeakTerms:     c.PeakTerms,
			FinalTerms:    c.FinalTerms,
			Cancelled:     c.Cancelled,
			Runtime:       time.Duration(c.RuntimeNS),
		},
		Status: rewrite.Status(c.Status),
		Err:    c.Err,
	}
	if c.Done() {
		expr, err := unpackExpr(c.Expr)
		if err != nil {
			return rewrite.BitResult{}, err
		}
		if expr.Len() != c.FinalTerms {
			return rewrite.BitResult{}, fmt.Errorf("%w: bit %d expression has %d terms, recorded %d",
				ErrCheckpoint, c.Bit, expr.Len(), c.FinalTerms)
		}
		br.Expr = expr
	}
	return br, nil
}

// Encode writes the snapshot to w in the framed on-disk format.
func Encode(w io.Writer, s *Snapshot) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[8:], Version)
	binary.BigEndian.PutUint64(hdr[12:], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Decode reads and validates a snapshot. Every way a file can be wrong —
// short header, bad magic, unsupported version, length or CRC mismatch,
// malformed JSON, structurally invalid payload — yields an error wrapping
// ErrCheckpoint.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCheckpoint, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpoint, hdr[:len(magic)])
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrCheckpoint, v, Version)
	}
	length := binary.BigEndian.Uint64(hdr[12:])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: payload claims %d bytes", ErrCheckpoint, length)
	}
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCheckpoint, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCheckpoint, len(payload), length)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[20:]); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (payload %08x, header %08x)", ErrCheckpoint, got, want)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	s := &Snapshot{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCheckpoint, err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// knownStatuses are the cone statuses a snapshot may carry.
var knownStatuses = map[rewrite.Status]bool{
	"": true, rewrite.StatusOK: true, rewrite.StatusBudget: true,
	rewrite.StatusTimeout: true, rewrite.StatusPanic: true,
	rewrite.StatusCancelled: true, rewrite.StatusError: true,
}

func (s *Snapshot) validate() error {
	if s.M < 1 {
		return fmt.Errorf("%w: m=%d", ErrCheckpoint, s.M)
	}
	if len(s.NetlistHash) != hex.EncodedLen(sha256.Size) {
		return fmt.Errorf("%w: netlist hash has length %d", ErrCheckpoint, len(s.NetlistHash))
	}
	if _, err := hex.DecodeString(s.NetlistHash); err != nil {
		return fmt.Errorf("%w: netlist hash not hex", ErrCheckpoint)
	}
	if len(s.Bits) != s.M {
		return fmt.Errorf("%w: %d bit records for m=%d", ErrCheckpoint, len(s.Bits), s.M)
	}
	for i, c := range s.Bits {
		if c.Bit != i {
			return fmt.Errorf("%w: bit record %d carries index %d", ErrCheckpoint, i, c.Bit)
		}
		if !knownStatuses[rewrite.Status(c.Status)] {
			return fmt.Errorf("%w: bit %d has unknown status %q", ErrCheckpoint, i, c.Status)
		}
		if c.Done() {
			// Decode the expression eagerly so corruption surfaces here, not
			// in the middle of a resumed extraction.
			if _, err := c.BitResult(); err != nil {
				return err
			}
		} else if c.Expr != "" {
			return fmt.Errorf("%w: bit %d carries an expression but status %q", ErrCheckpoint, i, c.Status)
		}
	}
	return nil
}

// Save writes the snapshot crash-safely into dir: temp file, fsync, atomic
// rename over SnapshotFile, fsync of the directory. A concurrent reader (or
// a post-crash restart) sees either the previous snapshot or this one.
func Save(dir string, s *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, SnapshotFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Encode(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, SnapshotFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so the rename itself is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms refuse fsync on directories; the rename is still
	// atomic there, just not yet durable, which is the platform's floor.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Load reads the snapshot from dir. A missing file is ErrNoCheckpoint; an
// unreadable or invalid file is ErrCheckpoint.
func Load(dir string) (*Snapshot, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
