package checkpoint

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/rewrite"
)

// Manager owns one extraction's snapshot lifecycle: it is the glue between
// the rewriting engine's per-cone completion hook and the crash-safe file in
// its directory. All methods are safe for concurrent use — Record is called
// from every rewriting worker.
//
// Saves are throttled: a Record within Throttle of the previous save only
// updates the in-memory snapshot and marks it dirty; the next Record past
// the window (or an explicit Sync) writes the file. Cones complete far more
// often than the window on small fields, so the file-write cost stays
// bounded while a crash loses at most one throttle window of completed
// cones — each of which the resumed run simply re-rewrites.
type Manager struct {
	dir string
	// Throttle is the minimum interval between snapshot writes (0 = save on
	// every Record, the durable-but-slow setting tests use).
	throttle time.Duration

	mu       sync.Mutex
	snap     *Snapshot
	lastSave time.Time
	dirty    bool
	saveErr  error
}

// NewManager creates a manager persisting into dir. throttle < 0 selects
// the default (250ms); 0 saves on every recorded cone.
func NewManager(dir string, throttle time.Duration) *Manager {
	if throttle < 0 {
		throttle = 250 * time.Millisecond
	}
	return &Manager{dir: dir, throttle: throttle}
}

// Dir returns the snapshot directory.
func (m *Manager) Dir() string { return m.dir }

// Begin initializes a fresh snapshot for n, discarding any in-memory state
// (the on-disk file is only replaced at the first save).
func (m *Manager) Begin(n *netlist.Netlist) error {
	hash, err := HashNetlist(n)
	if err != nil {
		return err
	}
	outs := n.OutputNames()
	s := &Snapshot{
		NetlistHash: hash,
		NetlistName: n.Name,
		M:           len(outs),
		Bits:        make([]Cone, len(outs)),
	}
	for i, name := range outs {
		s.Bits[i] = Cone{Bit: i, Name: name}
	}
	m.mu.Lock()
	m.snap = s
	m.dirty = true
	m.lastSave = time.Time{}
	m.saveErr = nil
	m.mu.Unlock()
	return nil
}

// Restore loads the directory's snapshot, verifies it matches n (content
// hash and output count), adopts it as the manager's state, and returns the
// completed cones as prior results for rewrite.Options.Prior. A missing
// snapshot falls back to Begin and returns no priors; a snapshot bound to a
// different netlist is ErrCheckpoint — resuming it would splice foreign
// expressions into this run.
func (m *Manager) Restore(n *netlist.Netlist) ([]rewrite.BitResult, error) {
	s, err := Load(m.dir)
	if errors.Is(err, ErrNoCheckpoint) {
		return nil, m.Begin(n)
	}
	if err != nil {
		return nil, err
	}
	hash, err := HashNetlist(n)
	if err != nil {
		return nil, err
	}
	if s.NetlistHash != hash {
		return nil, fmt.Errorf("%w: snapshot is for netlist %s (%.12s…), resuming %s (%.12s…)",
			ErrCheckpoint, s.NetlistName, s.NetlistHash, n.Name, hash)
	}
	if s.M != len(n.Outputs()) {
		return nil, fmt.Errorf("%w: snapshot has %d bits, netlist %d", ErrCheckpoint, s.M, len(n.Outputs()))
	}
	prior := make([]rewrite.BitResult, 0, s.DoneCones())
	for _, c := range s.Bits {
		if !c.Done() {
			continue
		}
		br, err := c.BitResult()
		if err != nil {
			return nil, err
		}
		prior = append(prior, br)
	}
	m.mu.Lock()
	m.snap = s
	m.dirty = false
	m.lastSave = time.Time{}
	m.saveErr = nil
	m.mu.Unlock()
	return prior, nil
}

// Record stores one cone's terminal result and saves the snapshot when the
// throttle window allows. Failed cones are recorded too — their status and
// error survive the restart as diagnostics — but stay pending for resume
// purposes. Write errors are sticky and surface from Sync.
func (m *Manager) Record(br rewrite.BitResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil || br.Bit < 0 || br.Bit >= len(m.snap.Bits) {
		return
	}
	m.snap.Bits[br.Bit] = FromBitResult(br)
	m.dirty = true
	if m.throttle == 0 || time.Since(m.lastSave) >= m.throttle {
		m.saveLocked()
	}
}

// AddRetries folds one run's governor retry count into the snapshot's
// cumulative total, so the retry state survives restarts.
func (m *Manager) AddRetries(retries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil || retries == 0 {
		return
	}
	m.snap.Retries += retries
	m.dirty = true
}

// Finalize records the recovered polynomial, marks the snapshot complete,
// and forces a save.
func (m *Manager) Finalize(p gf2poly.Poly) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil {
		return nil
	}
	m.snap.P = p.String()
	m.snap.Complete = true
	m.dirty = true
	m.saveLocked()
	return m.saveErr
}

// Sync forces a save of any dirty state and reports the first write error
// seen since the last Begin/Restore. Call on every shutdown path — it is
// what bounds the work lost to an interrupt to the in-flight cones.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap != nil && m.dirty {
		m.saveLocked()
	}
	return m.saveErr
}

// Snapshot returns a copy of the in-memory snapshot (nil before Begin).
func (m *Manager) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil {
		return nil
	}
	cp := *m.snap
	cp.Bits = append([]Cone(nil), m.snap.Bits...)
	return &cp
}

// saveLocked writes the snapshot; the caller holds m.mu.
func (m *Manager) saveLocked() {
	m.snap.SavedUnixNS = time.Now().UnixNano()
	if err := Save(m.dir, m.snap); err != nil {
		if m.saveErr == nil {
			m.saveErr = err
		}
		return
	}
	m.dirty = false
	m.lastSave = time.Now()
}
