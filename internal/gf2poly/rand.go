package gf2poly

import (
	"fmt"
	"math/rand"
)

// RandomPoly returns a uniformly random polynomial of exact degree deg
// (the x^deg coefficient is forced to 1, lower coefficients are fair coins).
func RandomPoly(r *rand.Rand, deg int) Poly {
	p := Monomial(deg)
	for i := 0; i < deg; i++ {
		if r.Intn(2) == 1 {
			p = p.Add(Monomial(i))
		}
	}
	return p
}

// RandomIrreducible samples a uniformly random irreducible polynomial of
// degree m by rejection: the density of irreducibles among degree-m
// polynomials with constant term 1 is about 2/m, so the expected number of
// trials is m/2. Candidates keep the constant term 1 (any irreducible of
// degree >= 1 other than x has one), which doubles the hit rate.
//
// It is the planted-polynomial sampler of the differential-testing harness:
// unlike polytab.Default it covers dense polynomials, not just the trinomial
// and pentanomial corners the standards prefer.
func RandomIrreducible(r *rand.Rand, m int) (Poly, error) {
	if m < 1 {
		return Poly{}, fmt.Errorf("gf2poly: no irreducible of degree %d", m)
	}
	if m == 1 {
		// x and x+1 are the only candidates; pick fairly.
		if r.Intn(2) == 1 {
			return X(), nil
		}
		return X().Add(One()), nil
	}
	// With success probability ~2/m per trial, 64*m trials fail with
	// probability well under 2^-100; the bound only guards against a broken
	// Irreducible predicate turning this into an infinite loop.
	for trial := 0; trial < 64*m; trial++ {
		p := Monomial(m).Add(One())
		for i := 1; i < m; i++ {
			if r.Intn(2) == 1 {
				p = p.Add(Monomial(i))
			}
		}
		if p.Irreducible() {
			return p, nil
		}
	}
	return Poly{}, fmt.Errorf("gf2poly: no irreducible of degree %d found after %d trials", m, 64*m)
}
