package gf2poly

import (
	"math/rand"
	"testing"
)

func TestIrreducibleBerlekampAgreesWithRabinExhaustive(t *testing.T) {
	// Two independent algorithms must agree on every polynomial of degree
	// 1..11.
	for v := uint64(2); v < 1<<12; v++ {
		p := FromUint64(v)
		rabin := p.Irreducible()
		berle := p.IrreducibleBerlekamp()
		if rabin != berle {
			t.Fatalf("%v: Rabin=%v Berlekamp=%v", p, rabin, berle)
		}
	}
}

func TestIrreducibleBerlekampNIST(t *testing.T) {
	for _, s := range []string{
		"x^64+x^21+x^19+x^4+1",
		"x^163+x^80+x^47+x^9+1",
		"x^233+x^74+1",
	} {
		if !MustParse(s).IrreducibleBerlekamp() {
			t.Errorf("%s should be irreducible (Berlekamp)", s)
		}
	}
	for _, s := range []string{"x^64+1", "x^233+x^73+1", "x^4+x^2+1", "0", "1"} {
		if MustParse(s).IrreducibleBerlekamp() {
			t.Errorf("%s should be reducible (Berlekamp)", s)
		}
	}
}

func TestNumDistinctFactorsAgainstFactorize(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	// Exhaustive small.
	for v := uint64(2); v < 1<<10; v++ {
		p := FromUint64(v)
		want := len(p.Factorize(r))
		if got := p.NumDistinctFactors(); got != want {
			t.Fatalf("%v: NumDistinctFactors=%d, Factorize finds %d", p, got, want)
		}
	}
	// Structured cases with x factors and repeats.
	cases := map[string]int{
		"x":               1,
		"x^3":             1,
		"x^2+x":           2, // x(x+1)
		"x^5+x^4+x^3+x^2": 2, // x²(x+1)³
		"x^64+1":          1, // (x+1)^64
		"x^4+x+1":         1,
	}
	for s, want := range cases {
		if got := MustParse(s).NumDistinctFactors(); got != want {
			t.Errorf("%s: %d distinct factors, want %d", s, got, want)
		}
	}
	if got := One().NumDistinctFactors(); got != 0 {
		t.Errorf("constant: %d", got)
	}
}

func TestNumDistinctFactorsRandomProducts(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	irr := []Poly{
		MustParse("x"), MustParse("x+1"), MustParse("x^2+x+1"),
		MustParse("x^3+x+1"), MustParse("x^3+x^2+1"), MustParse("x^5+x^2+1"),
	}
	for trial := 0; trial < 30; trial++ {
		p := One()
		distinct := 0
		for _, f := range irr {
			k := r.Intn(3)
			if k == 0 {
				continue
			}
			distinct++
			for i := 0; i < k; i++ {
				p = p.Mul(f)
			}
		}
		if p.IsOne() {
			continue
		}
		if got := p.NumDistinctFactors(); got != distinct {
			t.Errorf("trial %d (%v): %d distinct, want %d", trial, p, got, distinct)
		}
	}
}

func BenchmarkIrreducibleBerlekamp233(b *testing.B) {
	p := MustParse("x^233+x^74+1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.IrreducibleBerlekamp() {
			b.Fatal("should be irreducible")
		}
	}
}
