// Package gf2poly implements univariate polynomial arithmetic over GF(2).
//
// A polynomial is stored as a little-endian bit vector: bit i of the word
// slice is the coefficient of x^i. All ring operations (addition,
// carry-less multiplication, division with remainder, GCD, modular
// squaring/exponentiation) are word-parallel, which keeps the sizes used in
// the paper (m up to 571) cheap. The package also provides Rabin's
// irreducibility test, the foundation for validating extracted polynomials
// and for searching trinomials/pentanomials in package polytab.
//
// Poly values are immutable: every operation returns a fresh, normalized
// polynomial (no trailing zero words), so values can be shared freely across
// goroutines.
package gf2poly

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Poly is a polynomial over GF(2). The zero value is the zero polynomial.
type Poly struct {
	w []uint64 // little-endian; normalized: len(w)==0 or w[len(w)-1] != 0
}

// Zero returns the zero polynomial.
func Zero() Poly { return Poly{} }

// One returns the constant polynomial 1.
func One() Poly { return Poly{w: []uint64{1}} }

// X returns the polynomial x.
func X() Poly { return Poly{w: []uint64{2}} }

// Monomial returns x^deg.
func Monomial(deg int) Poly {
	if deg < 0 {
		panic("gf2poly: negative degree monomial")
	}
	w := make([]uint64, deg/wordBits+1)
	w[deg/wordBits] = 1 << (uint(deg) % wordBits)
	return Poly{w: w}
}

// FromTerms builds a polynomial from a list of exponents. Repeated exponents
// cancel in pairs, consistent with coefficient arithmetic mod 2.
func FromTerms(exps ...int) Poly {
	p := Poly{}
	for _, e := range exps {
		p = p.Add(Monomial(e))
	}
	return p
}

// FromUint64 interprets v as the coefficient bit vector of a polynomial of
// degree at most 63.
func FromUint64(v uint64) Poly {
	if v == 0 {
		return Poly{}
	}
	return Poly{w: []uint64{v}}
}

// FromWords builds a polynomial from a little-endian uint64 coefficient
// vector. The input slice is copied.
func FromWords(words []uint64) Poly {
	w := make([]uint64, len(words))
	copy(w, words)
	return normalize(w)
}

// Words returns a copy of the little-endian coefficient words. The zero
// polynomial yields an empty slice.
func (p Poly) Words() []uint64 {
	out := make([]uint64, len(p.w))
	copy(out, p.w)
	return out
}

func normalize(w []uint64) Poly {
	n := len(w)
	for n > 0 && w[n-1] == 0 {
		n--
	}
	if n == 0 {
		return Poly{}
	}
	return Poly{w: w[:n]}
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.w) == 0 }

// IsOne reports whether p is the constant polynomial 1.
func (p Poly) IsOne() bool { return len(p.w) == 1 && p.w[0] == 1 }

// Deg returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Deg() int {
	if len(p.w) == 0 {
		return -1
	}
	top := p.w[len(p.w)-1]
	return (len(p.w)-1)*wordBits + bits.Len64(top) - 1
}

// Coeff returns the coefficient (0 or 1) of x^i.
func (p Poly) Coeff(i int) uint {
	if i < 0 || i/wordBits >= len(p.w) {
		return 0
	}
	return uint(p.w[i/wordBits]>>(uint(i)%wordBits)) & 1
}

// Weight returns the number of nonzero coefficients of p.
func (p Poly) Weight() int {
	n := 0
	for _, w := range p.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Terms returns the exponents with nonzero coefficients in descending order.
func (p Poly) Terms() []int {
	terms := make([]int, 0, p.Weight())
	for i := p.Deg(); i >= 0; i-- {
		if p.Coeff(i) == 1 {
			terms = append(terms, i)
		}
	}
	return terms
}

// Equal reports whether p and q are the same polynomial.
func (p Poly) Equal(q Poly) bool {
	if len(p.w) != len(q.w) {
		return false
	}
	for i := range p.w {
		if p.w[i] != q.w[i] {
			return false
		}
	}
	return true
}

// Add returns p + q (which over GF(2) is also p - q).
func (p Poly) Add(q Poly) Poly {
	a, b := p.w, q.w
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	return normalize(out)
}

// Shl returns p * x^n.
func (p Poly) Shl(n int) Poly {
	if n < 0 {
		panic("gf2poly: negative shift")
	}
	if p.IsZero() || n == 0 {
		return p
	}
	wordShift, bitShift := n/wordBits, uint(n)%wordBits
	out := make([]uint64, len(p.w)+wordShift+1)
	for i, w := range p.w {
		out[i+wordShift] |= w << bitShift
		if bitShift != 0 {
			out[i+wordShift+1] |= w >> (wordBits - bitShift)
		}
	}
	return normalize(out)
}

// Shr returns p / x^n, discarding coefficients below x^n.
func (p Poly) Shr(n int) Poly {
	if n < 0 {
		panic("gf2poly: negative shift")
	}
	if p.IsZero() || n == 0 {
		return p
	}
	wordShift, bitShift := n/wordBits, uint(n)%wordBits
	if wordShift >= len(p.w) {
		return Poly{}
	}
	out := make([]uint64, len(p.w)-wordShift)
	for i := range out {
		out[i] = p.w[i+wordShift] >> bitShift
		if bitShift != 0 && i+wordShift+1 < len(p.w) {
			out[i] |= p.w[i+wordShift+1] << (wordBits - bitShift)
		}
	}
	return normalize(out)
}

// Mul returns the carry-less product p * q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	// Iterate over the set bits of the smaller operand.
	a, b := p.w, q.w
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a)+len(b))
	for wi, w := range a {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			shift := uint(bit)
			base := wi
			// out ^= b << (wi*64 + bit)
			for j, bw := range b {
				out[base+j] ^= bw << shift
				if shift != 0 {
					out[base+j+1] ^= bw >> (wordBits - shift)
				}
			}
		}
	}
	return normalize(out)
}

// spread16 maps a 16-bit value to a 32-bit value with a zero bit interleaved
// after every input bit; precomputed for Square.
var spread16 [1 << 16]uint32

func init() {
	for v := 0; v < 1<<16; v++ {
		var s uint32
		for i := 0; i < 16; i++ {
			s |= uint32(v>>uint(i)&1) << uint(2*i)
		}
		spread16[v] = s
	}
}

// Square returns p*p. Over GF(2) squaring is linear: it spreads the
// coefficient bits apart (the coefficient of x^(2i) is the coefficient of
// x^i), so it runs in O(len) table lookups.
func (p Poly) Square() Poly {
	if p.IsZero() {
		return Poly{}
	}
	out := make([]uint64, 2*len(p.w))
	for i, w := range p.w {
		lo := uint64(spread16[w&0xffff]) | uint64(spread16[w>>16&0xffff])<<32
		hi := uint64(spread16[w>>32&0xffff]) | uint64(spread16[w>>48])<<32
		out[2*i] = lo
		out[2*i+1] = hi
	}
	return normalize(out)
}

// DivMod returns the quotient and remainder of p divided by q.
// It panics if q is zero.
func (p Poly) DivMod(q Poly) (quo, rem Poly) {
	if q.IsZero() {
		panic("gf2poly: division by zero polynomial")
	}
	dq := q.Deg()
	rem = p
	if p.Deg() < dq {
		return Poly{}, p
	}
	quoWords := make([]uint64, p.Deg()/wordBits+1)
	r := make([]uint64, len(p.w))
	copy(r, p.w)
	rp := normalize(r)
	for rp.Deg() >= dq {
		shift := rp.Deg() - dq
		quoWords[shift/wordBits] ^= 1 << (uint(shift) % wordBits)
		rp = rp.Add(q.Shl(shift))
	}
	return normalize(quoWords), rp
}

// Mod returns p mod q.
func (p Poly) Mod(q Poly) Poly {
	_, r := p.DivMod(q)
	return r
}

// MulMod returns p*q mod f.
func (p Poly) MulMod(q, f Poly) Poly { return p.Mul(q).Mod(f) }

// SquareMod returns p² mod f.
func (p Poly) SquareMod(f Poly) Poly { return p.Square().Mod(f) }

// ExpMod returns p^e mod f using square-and-multiply. e must be >= 0.
func (p Poly) ExpMod(e uint64, f Poly) Poly {
	result := One().Mod(f)
	base := p.Mod(f)
	for e > 0 {
		if e&1 == 1 {
			result = result.MulMod(base, f)
		}
		base = base.SquareMod(f)
		e >>= 1
	}
	return result
}

// GCD returns the greatest common divisor of p and q (monic by construction
// over GF(2); the GCD of two zero polynomials is zero).
func GCD(p, q Poly) Poly {
	for !q.IsZero() {
		p, q = q, p.Mod(q)
	}
	return p
}

// primeFactors returns the distinct prime factors of n in ascending order.
func primeFactors(n int) []int {
	var fs []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			fs = append(fs, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// frobenius returns x^(2^k) mod f, computed by k modular squarings of x.
func frobenius(k int, f Poly) Poly {
	h := X().Mod(f)
	for i := 0; i < k; i++ {
		h = h.SquareMod(f)
	}
	return h
}

// Irreducible reports whether p is irreducible over GF(2) using Rabin's
// test: p of degree n is irreducible iff x^(2^n) ≡ x (mod p) and, for every
// prime divisor d of n, gcd(x^(2^(n/d)) − x mod p, p) = 1.
func (p Poly) Irreducible() bool {
	n := p.Deg()
	switch {
	case n <= 0:
		return false
	case n == 1:
		return true
	}
	// Any polynomial with zero constant term is divisible by x, and any
	// polynomial with an even number of terms is divisible by x+1.
	if p.Coeff(0) == 0 || p.Weight()%2 == 0 {
		return false
	}
	x := X()
	for _, d := range primeFactors(n) {
		h := frobenius(n/d, p).Add(x)
		if !GCD(h, p).IsOne() {
			return false
		}
	}
	return frobenius(n, p).Equal(x.Mod(p))
}

// String renders p in the paper's notation, e.g. "x^4+x+1".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var sb strings.Builder
	for i, e := range p.Terms() {
		if i > 0 {
			sb.WriteByte('+')
		}
		switch e {
		case 0:
			sb.WriteByte('1')
		case 1:
			sb.WriteByte('x')
		default:
			fmt.Fprintf(&sb, "x^%d", e)
		}
	}
	return sb.String()
}

// Parse reads a polynomial in the notation produced by String. Whitespace is
// ignored; terms may repeat (they cancel mod 2). Accepted term forms: "0",
// "1", "x", "x^K".
func Parse(s string) (Poly, error) {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return -1
		}
		return r
	}, s)
	if clean == "" {
		return Poly{}, fmt.Errorf("gf2poly: empty polynomial string")
	}
	if clean == "0" {
		return Poly{}, nil
	}
	p := Poly{}
	for _, term := range strings.Split(clean, "+") {
		switch {
		case term == "1":
			p = p.Add(One())
		case term == "x":
			p = p.Add(X())
		case strings.HasPrefix(term, "x^"):
			var e int
			if _, err := fmt.Sscanf(term[2:], "%d", &e); err != nil || e < 0 {
				return Poly{}, fmt.Errorf("gf2poly: bad term %q in %q", term, s)
			}
			p = p.Add(Monomial(e))
		default:
			return Poly{}, fmt.Errorf("gf2poly: bad term %q in %q", term, s)
		}
	}
	return p, nil
}

// MustParse is Parse that panics on error; intended for static tables.
func MustParse(s string) Poly {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}
