package gf2poly

import (
	"fmt"
	"math/rand"
	"sort"
)

// Factorization support. The extractor uses this for diagnostics: when a
// recovered polynomial fails Rabin's test, reporting its factors pinpoints
// what the netlist actually computes (e.g. a tampered reduction often turns
// P(x) into a product with a small factor). The algorithms are the standard
// characteristic-2 chain: square-free decomposition, distinct-degree
// factorization, and Cantor–Zassenhaus equal-degree splitting with the
// GF(2^d) trace map.

// Derivative returns the formal derivative of p: d/dx Σ x^k = Σ k·x^(k-1),
// so over GF(2) only odd exponents survive.
func (p Poly) Derivative() Poly {
	d := Poly{}
	for _, e := range p.Terms() {
		if e%2 == 1 {
			d = d.Add(Monomial(e - 1))
		}
	}
	return d
}

// SqrtPoly returns g with g² = p, valid when p has only even exponents
// (which over GF(2) is exactly the condition p = g² for some g).
// It panics if p has an odd exponent.
func (p Poly) SqrtPoly() Poly {
	g := Poly{}
	for _, e := range p.Terms() {
		if e%2 == 1 {
			panic(fmt.Sprintf("gf2poly: SqrtPoly of non-square %v", p))
		}
		g = g.Add(Monomial(e / 2))
	}
	return g
}

// Factor is one irreducible factor with its multiplicity.
type Factor struct {
	P    Poly
	Mult int
}

// Factorize returns the irreducible factorization of p, sorted by degree
// then lexicographically. The zero polynomial and constants have no
// factors. The rand source drives the equal-degree splitting; any seed
// works (re-draws happen automatically on unlucky splits).
func (p Poly) Factorize(r *rand.Rand) []Factor {
	if p.Deg() < 1 {
		return nil
	}
	counts := map[string]Poly{}
	mult := map[string]int{}
	add := func(f Poly, k int) {
		key := f.String()
		counts[key] = f
		mult[key] += k
	}
	var factorRec func(f Poly, k int)
	factorRec = func(f Poly, k int) {
		if f.IsOne() {
			return
		}
		// Pull out the content factors x and (x+1) early; cheap and common.
		for f.Coeff(0) == 0 {
			add(X(), k)
			f = f.Shr(1)
		}
		if f.IsOne() {
			return
		}
		fp := f.Derivative()
		if fp.IsZero() {
			// f = g² exactly.
			factorRec(f.SqrtPoly(), 2*k)
			return
		}
		g := GCD(f, fp)
		w, _ := f.DivMod(g)
		// w is square-free; split it by distinct degree, then equal degree.
		for _, irr := range squareFreeFactors(w, r) {
			add(irr, k)
		}
		if !g.IsOne() {
			factorRec(g, k)
		}
	}
	factorRec(p, 1)

	out := make([]Factor, 0, len(counts))
	for key, f := range counts {
		out = append(out, Factor{P: f, Mult: mult[key]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P.Deg() != out[j].P.Deg() {
			return out[i].P.Deg() < out[j].P.Deg()
		}
		return out[i].P.String() < out[j].P.String()
	})
	return out
}

// squareFreeFactors factors a square-free polynomial: distinct-degree pass
// followed by equal-degree splitting per degree class.
func squareFreeFactors(w Poly, r *rand.Rand) []Poly {
	var out []Poly
	if w.IsOne() {
		return nil
	}
	h := X().Mod(w)
	for d := 1; w.Deg() >= 2*d; d++ {
		h = h.SquareMod(w) // h = x^(2^d) mod (current) w
		g := GCD(h.Add(X()), w)
		if g.IsOne() {
			continue
		}
		out = append(out, equalDegreeSplit(g, d, r)...)
		w, _ = w.DivMod(g)
		h = h.Mod(w)
	}
	if w.Deg() > 0 {
		out = append(out, w) // the remaining factor is irreducible
	}
	return out
}

// equalDegreeSplit splits g — a square-free product of irreducibles all of
// degree d — into those irreducibles using the characteristic-2 trace map
// T(u) = u + u² + u⁴ + … + u^(2^(d-1)) mod g.
func equalDegreeSplit(g Poly, d int, r *rand.Rand) []Poly {
	if g.Deg() == d {
		return []Poly{g}
	}
	for {
		// Random u of degree < deg g.
		words := make([]uint64, g.Deg()/64+1)
		for i := range words {
			words[i] = r.Uint64()
		}
		u := FromWords(words).Mod(g)
		if u.Deg() < 1 {
			continue
		}
		t := Zero()
		v := u
		for i := 0; i < d; i++ {
			t = t.Add(v)
			v = v.SquareMod(g)
		}
		h := GCD(t, g)
		if h.IsOne() || h.Equal(g) {
			continue // unlucky draw; retry
		}
		rest, _ := g.DivMod(h)
		return append(equalDegreeSplit(h, d, r), equalDegreeSplit(rest, d, r)...)
	}
}
