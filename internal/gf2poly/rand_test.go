package gf2poly

import (
	"math/rand"
	"testing"
)

func TestRandomPolyDegreeAndDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for trial := 0; trial < 200; trial++ {
		p := RandomPoly(r, 6)
		if p.Deg() != 6 {
			t.Fatalf("degree %d, want 6", p.Deg())
		}
		seen[p.String()] = true
	}
	// 64 possible degree-6 polynomials; 200 draws must hit a healthy spread.
	if len(seen) < 40 {
		t.Errorf("only %d distinct polynomials in 200 draws", len(seen))
	}
}

func TestRandomIrreducibleIsIrreducible(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for m := 1; m <= 64; m++ {
		p, err := RandomIrreducible(r, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if p.Deg() != m {
			t.Fatalf("m=%d: sampled degree %d", m, p.Deg())
		}
		if !p.Irreducible() {
			t.Fatalf("m=%d: %v is reducible", m, p)
		}
	}
	if _, err := RandomIrreducible(r, 0); err == nil {
		t.Error("degree 0 should fail")
	}
}

// TestIrreducibleAgreesWithBerlekamp cross-checks the two independent
// irreducibility algorithms (Rabin's test vs Berlekamp nullity) on random
// polynomials — the same differential principle the netlist harness uses,
// applied to the algebra layer itself.
func TestIrreducibleAgreesWithBerlekamp(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		p := RandomPoly(r, 1+r.Intn(48))
		a, b := p.Irreducible(), p.IrreducibleBerlekamp()
		if a != b {
			t.Fatalf("%v: Irreducible=%v, IrreducibleBerlekamp=%v", p, a, b)
		}
	}
}

// TestIrreducibleAgreesWithFactorize: a polynomial is irreducible exactly
// when its factorization is itself with multiplicity 1; and in every case
// the factor product must rebuild the input with irreducible factors.
func TestIrreducibleAgreesWithFactorize(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		p := RandomPoly(r, 2+r.Intn(24))
		facs := p.Factorize(rand.New(rand.NewSource(int64(trial))))
		prod := One()
		for _, f := range facs {
			if !f.P.Irreducible() {
				t.Fatalf("%v: factor %v is reducible", p, f.P)
			}
			for i := 0; i < f.Mult; i++ {
				prod = prod.Mul(f.P)
			}
		}
		if !prod.Equal(p) {
			t.Fatalf("%v: factor product is %v", p, prod)
		}
		wantIrr := len(facs) == 1 && facs[0].Mult == 1
		if p.Irreducible() != wantIrr {
			t.Fatalf("%v: Irreducible=%v but factorization says %v", p, p.Irreducible(), wantIrr)
		}
	}
}

// TestIrreducibleCountsExhaustive verifies the number of degree-d
// irreducible polynomials over GF(2) against the necklace-counting formula
// values (OEIS A001037) by enumerating every polynomial up to degree 10.
func TestIrreducibleCountsExhaustive(t *testing.T) {
	want := map[int]int{1: 2, 2: 1, 3: 2, 4: 3, 5: 6, 6: 9, 7: 18, 8: 30, 9: 56, 10: 99}
	for d := 1; d <= 10; d++ {
		count := 0
		for low := 0; low < 1<<uint(d); low++ {
			p := Monomial(d)
			for i := 0; i < d; i++ {
				if low>>uint(i)&1 == 1 {
					p = p.Add(Monomial(i))
				}
			}
			irr := p.Irreducible()
			if irr != p.IrreducibleBerlekamp() {
				t.Fatalf("%v: algorithms disagree", p)
			}
			if irr {
				count++
			}
		}
		if count != want[d] {
			t.Errorf("degree %d: %d irreducibles, want %d", d, count, want[d])
		}
	}
}
