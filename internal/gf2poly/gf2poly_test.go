package gf2poly

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randPoly returns a random polynomial of degree < maxDeg (possibly zero).
func randPoly(r *rand.Rand, maxDeg int) Poly {
	w := make([]uint64, maxDeg/wordBits+1)
	for i := range w {
		w[i] = r.Uint64()
	}
	topBits := uint(maxDeg) % wordBits
	w[len(w)-1] &= (1 << topBits) - 1
	return normalize(w)
}

// Generate lets testing/quick produce random Poly values of degree < 192.
func (Poly) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randPoly(r, 192))
}

func TestZeroOneX(t *testing.T) {
	if !Zero().IsZero() || Zero().Deg() != -1 {
		t.Errorf("Zero() = %v, Deg %d", Zero(), Zero().Deg())
	}
	if !One().IsOne() || One().Deg() != 0 {
		t.Errorf("One() = %v, Deg %d", One(), One().Deg())
	}
	if X().Deg() != 1 || X().Coeff(1) != 1 || X().Coeff(0) != 0 {
		t.Errorf("X() = %v", X())
	}
}

func TestMonomial(t *testing.T) {
	for _, d := range []int{0, 1, 5, 63, 64, 65, 127, 128, 233, 571} {
		m := Monomial(d)
		if m.Deg() != d {
			t.Errorf("Monomial(%d).Deg() = %d", d, m.Deg())
		}
		if m.Weight() != 1 {
			t.Errorf("Monomial(%d).Weight() = %d", d, m.Weight())
		}
		if m.Coeff(d) != 1 {
			t.Errorf("Monomial(%d).Coeff(%d) = 0", d, d)
		}
	}
}

func TestMonomialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Monomial(-1) did not panic")
		}
	}()
	Monomial(-1)
}

func TestFromTermsCancels(t *testing.T) {
	if !FromTerms(3, 3).IsZero() {
		t.Error("x^3+x^3 should cancel to zero")
	}
	p := FromTerms(4, 1, 0)
	if p.String() != "x^4+x+1" {
		t.Errorf("FromTerms(4,1,0) = %q", p)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "x", "x+1", "x^4+x+1", "x^233+x^74+1",
		"x^571+x^10+x^5+x^2+1", "x^64+x^21+x^19+x^4+1"}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseWhitespaceAndErrors(t *testing.T) {
	p, err := Parse(" x^4 + x + 1 ")
	if err != nil || p.String() != "x^4+x+1" {
		t.Errorf("Parse with spaces: %v, %v", p, err)
	}
	for _, bad := range []string{"", "y", "x^", "x^-2", "x**4", "2x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a poly")
}

func TestAddBasic(t *testing.T) {
	a := MustParse("x^4+x+1")
	b := MustParse("x^4+x^3+1")
	if got := a.Add(b).String(); got != "x^3+x" {
		t.Errorf("(x^4+x+1)+(x^4+x^3+1) = %q", got)
	}
}

func TestMulBasic(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2).
	a := MustParse("x+1")
	if got := a.Mul(a).String(); got != "x^2+1" {
		t.Errorf("(x+1)^2 = %q", got)
	}
	// (x^2+x+1)(x+1) = x^3+1.
	b := MustParse("x^2+x+1")
	if got := b.Mul(MustParse("x+1")).String(); got != "x^3+1" {
		t.Errorf("(x^2+x+1)(x+1) = %q", got)
	}
}

func TestMulAcrossWordBoundary(t *testing.T) {
	a := Monomial(63)
	b := Monomial(63)
	if got := a.Mul(b); !got.Equal(Monomial(126)) {
		t.Errorf("x^63 * x^63 = %v", got)
	}
	c := MustParse("x^63+1")
	want := MustParse("x^126+1") // (x^63+1)^2
	if got := c.Mul(c); !got.Equal(want) {
		t.Errorf("(x^63+1)^2 = %v, want %v", got, want)
	}
}

func TestShlShr(t *testing.T) {
	p := MustParse("x^4+x+1")
	if got := p.Shl(70).Shr(70); !got.Equal(p) {
		t.Errorf("Shl/Shr round trip = %v", got)
	}
	if got := p.Shr(2).String(); got != "x^2" {
		t.Errorf("(x^4+x+1)>>2 = %q", got)
	}
	if !Zero().Shl(5).IsZero() || !Zero().Shr(5).IsZero() {
		t.Error("shifting zero should stay zero")
	}
	if got := p.Shr(100); !got.IsZero() {
		t.Errorf("over-shift right = %v", got)
	}
}

func TestDivModBasic(t *testing.T) {
	// x^4+x+1 divided by x^2+1: x^4+x+1 = (x^2+1)(x^2+1) + x.
	p := MustParse("x^4+x+1")
	q := MustParse("x^2+1")
	quo, rem := p.DivMod(q)
	if quo.String() != "x^2+1" || rem.String() != "x" {
		t.Errorf("DivMod = %v, %v", quo, rem)
	}
}

func TestDivModPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivMod by zero did not panic")
		}
	}()
	One().DivMod(Zero())
}

func TestModReduction(t *testing.T) {
	// x^4 mod x^4+x+1 = x+1.
	if got := Monomial(4).Mod(MustParse("x^4+x+1")).String(); got != "x+1" {
		t.Errorf("x^4 mod (x^4+x+1) = %q", got)
	}
	// x^4 mod x^4+x^3+1 = x^3+1 (the P1 of Figure 1).
	if got := Monomial(4).Mod(MustParse("x^4+x^3+1")).String(); got != "x^3+1" {
		t.Errorf("x^4 mod (x^4+x^3+1) = %q", got)
	}
}

func TestGCD(t *testing.T) {
	a := MustParse("x^3+1") // (x+1)(x^2+x+1)
	b := MustParse("x^2+1") // (x+1)^2
	if got := GCD(a, b).String(); got != "x+1" {
		t.Errorf("gcd = %q", got)
	}
	if got := GCD(a, Zero()); !got.Equal(a) {
		t.Errorf("gcd(a,0) = %v", got)
	}
	if !GCD(Zero(), Zero()).IsZero() {
		t.Error("gcd(0,0) should be zero")
	}
}

func TestExpMod(t *testing.T) {
	f := MustParse("x^4+x+1")
	// The field GF(2^4) has multiplicative order 15: x^15 = 1 mod f.
	if got := X().ExpMod(15, f); !got.IsOne() {
		t.Errorf("x^15 mod f = %v", got)
	}
	if got := X().ExpMod(0, f); !got.IsOne() {
		t.Errorf("x^0 mod f = %v", got)
	}
	if got := X().ExpMod(4, f).String(); got != "x+1" {
		t.Errorf("x^4 mod f = %q", got)
	}
}

// bruteForceIrreducible checks irreducibility by trial division with every
// polynomial of degree 1..n/2 (n = deg p), feasible for small degrees.
func bruteForceIrreducible(p Poly) bool {
	n := p.Deg()
	if n <= 0 {
		return false
	}
	for d := 1; d <= n/2; d++ {
		for bitsVal := uint64(1 << d); bitsVal < 1<<(d+1); bitsVal++ {
			if p.Mod(FromUint64(bitsVal)).IsZero() {
				return false
			}
		}
	}
	return true
}

func TestIrreducibleSmallExhaustive(t *testing.T) {
	// Compare Rabin's test against trial division for every polynomial of
	// degree 1..10.
	for v := uint64(2); v < 1<<11; v++ {
		p := FromUint64(v)
		got, want := p.Irreducible(), bruteForceIrreducible(p)
		if got != want {
			t.Fatalf("Irreducible(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestIrreducibleKnownPolynomials(t *testing.T) {
	irreducible := []string{
		"x+1", "x^2+x+1", "x^4+x+1", "x^4+x^3+1",
		"x^64+x^21+x^19+x^4+1",
		"x^96+x^44+x^7+x^2+1",
		"x^163+x^80+x^47+x^9+1",
		"x^233+x^74+1",
		"x^283+x^12+x^7+x^5+1",
		"x^409+x^87+1",
		"x^571+x^10+x^5+x^2+1",
		// Table IV architecture-optimal polynomials.
		"x^233+x^201+x^105+x^9+1",
		"x^233+x^159+1",
		"x^233+x^185+x^121+x^105+1",
	}
	for _, s := range irreducible {
		if !MustParse(s).Irreducible() {
			t.Errorf("%s should be irreducible", s)
		}
	}
	reducible := []string{
		"0", "1", "x^2+1", "x^4+x^2+1", "x^233+x^73+1", "x^8+x^4+x^2+x",
		"x^64+1",
	}
	for _, s := range reducible {
		if MustParse(s).Irreducible() {
			t.Errorf("%s should be reducible", s)
		}
	}
}

func TestSquareMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randPoly(r, 300)
		if got, want := p.Square(), p.Mul(p); !got.Equal(want) {
			t.Fatalf("Square(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestWordsRoundTrip(t *testing.T) {
	p := MustParse("x^233+x^74+1")
	q := FromWords(p.Words())
	if !p.Equal(q) {
		t.Errorf("FromWords(Words()) = %v", q)
	}
	// Mutating the returned slice must not affect the polynomial.
	w := p.Words()
	w[0] = 0
	if p.Coeff(0) != 1 {
		t.Error("Words() aliases internal storage")
	}
	// Trailing zero words must normalize away.
	if got := FromWords([]uint64{1, 0, 0}); got.Deg() != 0 {
		t.Errorf("FromWords with trailing zeros: deg %d", got.Deg())
	}
}

func TestTerms(t *testing.T) {
	p := MustParse("x^64+x^21+x^19+x^4+1")
	want := []int{64, 21, 19, 4, 0}
	got := p.Terms()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

// --- property-based tests -------------------------------------------------

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b Poly) bool { return a.Add(b).Equal(b.Add(a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddAssociative(t *testing.T) {
	f := func(a, b, c Poly) bool {
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddSelfInverse(t *testing.T) {
	f := func(a Poly) bool { return a.Add(a).IsZero() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulCommutative(t *testing.T) {
	f := func(a, b Poly) bool { return a.Mul(b).Equal(b.Mul(a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulAssociative(t *testing.T) {
	f := func(a, b, c Poly) bool {
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropDistributive(t *testing.T) {
	f := func(a, b, c Poly) bool {
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDegree(t *testing.T) {
	f := func(a, b Poly) bool {
		p := a.Mul(b)
		if a.IsZero() || b.IsZero() {
			return p.IsZero()
		}
		return p.Deg() == a.Deg()+b.Deg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDivModIdentity(t *testing.T) {
	f := func(a, b Poly) bool {
		if b.IsZero() {
			return true
		}
		quo, rem := a.DivMod(b)
		if !rem.IsZero() && rem.Deg() >= b.Deg() {
			return false
		}
		return quo.Mul(b).Add(rem).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropGCDDivides(t *testing.T) {
	f := func(a, b Poly) bool {
		g := GCD(a, b)
		if g.IsZero() {
			return a.IsZero() && b.IsZero()
		}
		return a.Mod(g).IsZero() && b.Mod(g).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropShiftIsMonomialMul(t *testing.T) {
	f := func(a Poly, nRaw uint8) bool {
		n := int(nRaw) % 130
		return a.Shl(n).Equal(a.Mul(Monomial(n)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFrobeniusFixedField(t *testing.T) {
	// For irreducible f of degree n, every element h satisfies
	// h^(2^n) ≡ h (mod f).
	f := MustParse("x^64+x^21+x^19+x^4+1")
	prop := func(a Poly) bool {
		h := a.Mod(f)
		v := h
		for i := 0; i < 64; i++ {
			v = v.SquareMod(f)
		}
		return v.Equal(h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul233(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	p, q := randPoly(r, 233), randPoly(r, 233)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Mul(q)
	}
}

func BenchmarkIrreducible571(b *testing.B) {
	p := MustParse("x^571+x^10+x^5+x^2+1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Irreducible() {
			b.Fatal("should be irreducible")
		}
	}
}
