package gf2poly

// Berlekamp-matrix analysis: an independent algorithm for counting
// irreducible factors, used to cross-validate Rabin's test and the
// factorization routines. The Berlekamp subalgebra of GF(2)[x]/(f) — the
// kernel of (Q − I) where Q is the matrix of the Frobenius map h ↦ h² —
// has dimension equal to the number of distinct irreducible factors of a
// square-free f.

// bitRow is one row of a GF(2) matrix packed into words.
type bitRow []uint64

func newBitRow(n int) bitRow { return make(bitRow, (n+63)/64) }

func (r bitRow) get(i int) uint64 { return r[i/64] >> (uint(i) % 64) & 1 }

func (r bitRow) flip(i int) { r[i/64] ^= 1 << (uint(i) % 64) }

func (r bitRow) xorWith(o bitRow) {
	for i := range r {
		r[i] ^= o[i]
	}
}

// berlekampNullity returns dim ker(Q − I) for f (deg n >= 1): the number of
// distinct irreducible factors when f is square-free.
func berlekampNullity(f Poly) int {
	n := f.Deg()
	if n == 1 {
		return 1
	}
	// Row i of (Q − I): coefficients of x^(2i) mod f, with bit i flipped.
	rows := make([]bitRow, n)
	h := One()
	xx := X().Mul(X()).Mod(f)
	for i := 0; i < n; i++ {
		row := newBitRow(n)
		for j := 0; j < n; j++ {
			if h.Coeff(j) == 1 {
				row.flip(j)
			}
		}
		row.flip(i) // subtract the identity
		rows[i] = row
		h = h.MulMod(xx, f)
	}
	// Gaussian elimination over GF(2); nullity = n − rank.
	rank := 0
	for col := 0; col < n; col++ {
		pivot := -1
		for r := rank; r < n; r++ {
			if rows[r].get(col) == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < n; r++ {
			if r != rank && rows[r].get(col) == 1 {
				rows[r].xorWith(rows[rank])
			}
		}
		rank++
	}
	return n - rank
}

// NumDistinctFactors returns the number of distinct irreducible factors of
// p (0 for constants), computed via Berlekamp subalgebra dimensions — a
// fully independent cross-check of Factorize.
func (p Poly) NumDistinctFactors() int {
	if p.Deg() < 1 {
		return 0
	}
	hasX := false
	var squareFreeParts []Poly
	var walk func(f Poly)
	walk = func(f Poly) {
		for f.Deg() >= 1 && f.Coeff(0) == 0 {
			hasX = true
			f = f.Shr(1)
		}
		if f.Deg() < 1 {
			return
		}
		fp := f.Derivative()
		if fp.IsZero() {
			walk(f.SqrtPoly())
			return
		}
		g := GCD(f, fp)
		w, _ := f.DivMod(g)
		squareFreeParts = append(squareFreeParts, w)
		if !g.IsOne() {
			walk(g)
		}
	}
	walk(p)
	// lcm of the square-free parts is square-free and carries exactly the
	// distinct non-x factors of p.
	acc := One()
	for _, w := range squareFreeParts {
		g := GCD(acc, w)
		q, _ := w.DivMod(g)
		acc = acc.Mul(q)
	}
	n := 0
	if acc.Deg() >= 1 {
		n = berlekampNullity(acc)
	}
	if hasX {
		n++
	}
	return n
}

// IrreducibleBerlekamp reports irreducibility using the Berlekamp criterion
// (square-free with one-dimensional Frobenius-fixed subalgebra) — an
// independent algorithm against which Rabin's test is validated.
func (p Poly) IrreducibleBerlekamp() bool {
	n := p.Deg()
	switch {
	case n <= 0:
		return false
	case n == 1:
		return true
	}
	if p.Coeff(0) == 0 {
		return false
	}
	if !GCD(p, p.Derivative()).IsOne() {
		return false // repeated factors (or zero derivative: a square)
	}
	return berlekampNullity(p) == 1
}
