package gf2poly

import (
	"math/rand"
	"testing"
)

func TestDerivative(t *testing.T) {
	cases := map[string]string{
		"0":         "0",
		"1":         "0",
		"x":         "1",
		"x^2":       "0", // 2x = 0 mod 2
		"x^3+x+1":   "x^2+1",
		"x^4+x^3+1": "x^2",
	}
	for in, want := range cases {
		if got := MustParse(in).Derivative().String(); got != want {
			t.Errorf("(%s)' = %s, want %s", in, got, want)
		}
	}
}

func TestSqrtPoly(t *testing.T) {
	for _, s := range []string{"x^2+1", "x^4+x^2+1", "x^6"} {
		p := MustParse(s)
		g := p.SqrtPoly()
		if !g.Square().Equal(p) {
			t.Errorf("SqrtPoly(%s)² = %v", s, g.Square())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SqrtPoly of non-square should panic")
		}
	}()
	MustParse("x^3+1").SqrtPoly()
}

// checkFactorization verifies the product reconstructs p and every factor
// is irreducible.
func checkFactorization(t *testing.T, p Poly, fs []Factor) {
	t.Helper()
	prod := One()
	for _, f := range fs {
		if !f.P.Irreducible() {
			t.Errorf("factor %v of %v is not irreducible", f.P, p)
		}
		if f.Mult < 1 {
			t.Errorf("factor %v has multiplicity %d", f.P, f.Mult)
		}
		for i := 0; i < f.Mult; i++ {
			prod = prod.Mul(f.P)
		}
	}
	if !prod.Equal(p) {
		t.Errorf("factor product = %v, want %v (factors %v)", prod, p, fs)
	}
}

func TestFactorizeKnown(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := []struct {
		in      string
		factors int // number of distinct irreducible factors
	}{
		{"x^2+1", 1},           // (x+1)²
		{"x^3+1", 2},           // (x+1)(x²+x+1)
		{"x^4+x^2+1", 1},       // (x²+x+1)²
		{"x^4+x+1", 1},         // irreducible
		{"x^5+x^4+x^3+x^2", 2}, // x²·(x+1)³
		{"x^64+1", 1},          // (x+1)^64
		{"x^233+x^73+1", 0},    // unknown split; just verify reconstruction
	}
	for _, tc := range cases {
		p := MustParse(tc.in)
		fs := p.Factorize(r)
		checkFactorization(t, p, fs)
		if tc.factors > 0 && len(fs) != tc.factors {
			t.Errorf("%s: %d distinct factors, want %d (%v)", tc.in, len(fs), tc.factors, fs)
		}
	}
}

func TestFactorizeIrreducibleIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, s := range []string{"x^4+x+1", "x^64+x^21+x^19+x^4+1", "x^233+x^74+1"} {
		p := MustParse(s)
		fs := p.Factorize(r)
		if len(fs) != 1 || fs[0].Mult != 1 || !fs[0].P.Equal(p) {
			t.Errorf("Factorize(%s) = %v", s, fs)
		}
	}
}

func TestFactorizeDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if fs := Zero().Factorize(r); fs != nil {
		t.Errorf("Factorize(0) = %v", fs)
	}
	if fs := One().Factorize(r); fs != nil {
		t.Errorf("Factorize(1) = %v", fs)
	}
	fs := X().Factorize(r)
	if len(fs) != 1 || !fs[0].P.Equal(X()) {
		t.Errorf("Factorize(x) = %v", fs)
	}
}

func TestFactorizeExhaustiveSmall(t *testing.T) {
	// Every polynomial of degree 1..9: reconstruction + irreducibility of
	// every factor, cross-checked against the brute-force irreducibility
	// oracle.
	r := rand.New(rand.NewSource(4))
	for v := uint64(2); v < 1<<10; v++ {
		p := FromUint64(v)
		fs := p.Factorize(r)
		checkFactorization(t, p, fs)
		if bruteForceIrreducible(p) != (len(fs) == 1 && fs[0].Mult == 1) {
			t.Errorf("%v: factorization disagrees with irreducibility oracle: %v", p, fs)
		}
	}
}

func TestFactorizeRandomProducts(t *testing.T) {
	// Build products of known irreducibles with multiplicities and verify
	// exact recovery.
	r := rand.New(rand.NewSource(5))
	irr := []Poly{
		MustParse("x"), MustParse("x+1"), MustParse("x^2+x+1"),
		MustParse("x^3+x+1"), MustParse("x^4+x+1"), MustParse("x^7+x+1"),
	}
	for trial := 0; trial < 40; trial++ {
		want := map[string]int{}
		p := One()
		for _, f := range irr {
			k := r.Intn(4)
			if k == 0 {
				continue
			}
			want[f.String()] = k
			for i := 0; i < k; i++ {
				p = p.Mul(f)
			}
		}
		if p.IsOne() {
			continue
		}
		fs := p.Factorize(r)
		checkFactorization(t, p, fs)
		if len(fs) != len(want) {
			t.Fatalf("trial %d: got %d factors, want %d (%v)", trial, len(fs), len(want), fs)
		}
		for _, f := range fs {
			if want[f.P.String()] != f.Mult {
				t.Errorf("trial %d: factor %v mult %d, want %d", trial, f.P, f.Mult, want[f.P.String()])
			}
		}
	}
}

func TestFactorizeLargeSquareFree(t *testing.T) {
	// A 128-degree product of two NIST-size halves.
	r := rand.New(rand.NewSource(6))
	p := MustParse("x^64+x^21+x^19+x^4+1").Mul(MustParse("x^64+x^4+x^3+x+1"))
	fs := p.Factorize(r)
	checkFactorization(t, p, fs)
	if len(fs) != 2 {
		t.Errorf("expected 2 factors, got %v", fs)
	}
}
