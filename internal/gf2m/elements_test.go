package gf2m

import (
	"math/rand"
	"testing"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/polytab"
)

func TestConjugatesOrbitSize(t *testing.T) {
	f := MustNew(gf2poly.MustParse("x^8+x^4+x^3+x+1"))
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		a := f.Rand(r)
		conj := f.Conjugates(a)
		// Orbit size divides m.
		if 8%len(conj) != 0 {
			t.Errorf("orbit size %d does not divide 8", len(conj))
		}
		// Orbit closes: squaring the last conjugate returns to a.
		if !f.Square(conj[len(conj)-1]).Equal(f.Reduce(a)) {
			t.Errorf("orbit of %v does not close", a)
		}
	}
	// GF(2) elements have orbit size 1.
	if len(f.Conjugates(gf2poly.One())) != 1 || len(f.Conjugates(gf2poly.Zero())) != 1 {
		t.Error("subfield elements should be Frobenius-fixed")
	}
}

func TestMinimalPolynomialOfX(t *testing.T) {
	// The minimal polynomial of x is the defining polynomial itself.
	for _, m := range []int{4, 8, 16, 23} {
		p, _ := polytab.Default(m)
		f := MustNew(p)
		mp, err := f.MinimalPolynomial(gf2poly.X())
		if err != nil {
			t.Fatal(err)
		}
		if !mp.Equal(p) {
			t.Errorf("m=%d: minpoly(x) = %v, want %v", m, mp, p)
		}
	}
}

func TestMinimalPolynomialProperties(t *testing.T) {
	p, _ := polytab.Default(12)
	f := MustNew(p)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 15; i++ {
		a := f.Rand(r)
		mp, err := f.MinimalPolynomial(a)
		if err != nil {
			t.Fatal(err)
		}
		if !mp.Irreducible() {
			t.Errorf("minpoly(%v) = %v is reducible", a, mp)
		}
		if 12%mp.Deg() != 0 {
			t.Errorf("minpoly degree %d does not divide 12", mp.Deg())
		}
		// The element is a root: evaluate mp at a via Horner in the field.
		acc := gf2poly.Zero()
		for d := mp.Deg(); d >= 0; d-- {
			acc = f.Mul(acc, a)
			if mp.Coeff(d) == 1 {
				acc = f.Add(acc, gf2poly.One())
			}
		}
		if !acc.IsZero() {
			t.Errorf("mp(%v) != 0 for mp=%v", a, mp)
		}
	}
	// Constants: minpoly(0) = x, minpoly(1) = x+1.
	if mp, _ := f.MinimalPolynomial(gf2poly.Zero()); mp.String() != "x" {
		t.Errorf("minpoly(0) = %v", mp)
	}
	if mp, _ := f.MinimalPolynomial(gf2poly.One()); mp.String() != "x+1" {
		t.Errorf("minpoly(1) = %v", mp)
	}
}

func TestOrderAndGenerators(t *testing.T) {
	// GF(2^4) with x^4+x+1 is primitive: ord(x) = 15.
	f := MustNew(gf2poly.MustParse("x^4+x+1"))
	ord, err := f.ElementOrder(gf2poly.X())
	if err != nil {
		t.Fatal(err)
	}
	if ord != 15 {
		t.Errorf("ord(x) = %d, want 15", ord)
	}
	gen, err := f.IsGenerator(gf2poly.X())
	if err != nil || !gen {
		t.Errorf("x should generate GF(16)*: %v %v", gen, err)
	}
	// 1 has order 1.
	if ord, _ := f.ElementOrder(gf2poly.One()); ord != 1 {
		t.Errorf("ord(1) = %d", ord)
	}
	if _, err := f.ElementOrder(gf2poly.Zero()); err == nil {
		t.Error("ord(0) should fail")
	}
	// Element orders divide the group order and a^ord = 1 (checked
	// internally); spot-check exhaustively in GF(16): the number of
	// generators is φ(15) = 8.
	gens := 0
	for v := uint64(1); v < 16; v++ {
		g, err := f.IsGenerator(gf2poly.FromUint64(v))
		if err != nil {
			t.Fatal(err)
		}
		if g {
			gens++
		}
	}
	if gens != 8 {
		t.Errorf("GF(16)* has %d generators, want 8", gens)
	}
}

func TestOrderNonPrimitivePolynomial(t *testing.T) {
	// x^4+x^3+x^2+x+1 is irreducible but NOT primitive: ord(x) = 5.
	f := MustNew(gf2poly.MustParse("x^4+x^3+x^2+x+1"))
	ord, err := f.ElementOrder(gf2poly.X())
	if err != nil {
		t.Fatal(err)
	}
	if ord != 5 {
		t.Errorf("ord(x) = %d, want 5", ord)
	}
	gen, _ := f.IsGenerator(gf2poly.X())
	if gen {
		t.Error("x should not generate for the non-primitive quartic")
	}
}

func TestOrderLargeField(t *testing.T) {
	// NIST GF(2^63)? 63 is not NIST; use m=61 (2^61-1 is a Mersenne prime,
	// so EVERY non-identity element generates).
	p, err := polytab.Default(61)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNew(p)
	gen, err := f.IsGenerator(gf2poly.X())
	if err != nil {
		t.Fatal(err)
	}
	if !gen {
		t.Error("x must generate GF(2^61)* (Mersenne prime group order)")
	}
	// m > 63 unsupported.
	f2 := MustNew(polytab.NIST[64])
	if _, err := f2.ElementOrder(gf2poly.X()); err == nil {
		t.Error("m=64 should be unsupported")
	}
}

func TestFactorUint64(t *testing.T) {
	cases := map[uint64][]uint64{
		2:                   {2},
		15:                  {3, 5},
		1 << 20:             {2},
		255:                 {3, 5, 17},
		1<<32 - 1:           {3, 5, 17, 257, 65537},
		(1 << 61) - 1:       {2305843009213693951}, // Mersenne prime
		3 * 5 * 7 * 11 * 13: {3, 5, 7, 11, 13},
	}
	for n, want := range cases {
		got := factorUint64(n)
		if len(got) != len(want) {
			t.Errorf("factor(%d) = %v, want %v", n, got, want)
			continue
		}
		seen := map[uint64]bool{}
		for _, p := range got {
			seen[p] = true
			if n%p != 0 || !isPrimeU64(p) {
				t.Errorf("factor(%d): bad prime %d", n, p)
			}
		}
		for _, p := range want {
			if !seen[p] {
				t.Errorf("factor(%d) missing %d", n, p)
			}
		}
	}
}

func TestIsPrimeU64(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 61, 2305843009213693951, 18446744073709551557}
	composites := []uint64{0, 1, 4, 9, 561, 1 << 40, 2305843009213693951 * 3 % (1 << 62)}
	for _, p := range primes {
		if !isPrimeU64(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	for _, c := range composites {
		if isPrimeU64(c) {
			t.Errorf("%d should be composite", c)
		}
	}
}
