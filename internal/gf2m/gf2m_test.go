package gf2m

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/polytab"
)

func field(t testing.TB, m int) *Field {
	t.Helper()
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatalf("no polynomial for m=%d: %v", m, err)
	}
	return MustNew(p)
}

func TestNewRejectsBadModulus(t *testing.T) {
	if _, err := New(gf2poly.Zero()); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(gf2poly.One()); err == nil {
		t.Error("New(1) should fail")
	}
	if _, err := New(gf2poly.MustParse("x^4+x^2+1")); err == nil {
		t.Error("reducible modulus should fail")
	}
	if _, err := New(gf2poly.MustParse("x^4+x+1")); err != nil {
		t.Errorf("x^4+x+1 should construct a field: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on reducible modulus")
		}
	}()
	MustNew(gf2poly.MustParse("x^2+1"))
}

func TestGF16MulTable(t *testing.T) {
	// GF(2^4) with x^4+x+1: x^4 = x+1, so x^3 * x = x+1 and
	// (x^3+1)(x+1) = x^4+x^3+x+1 = x^3 (since x^4 = x+1 cancels x+1).
	f := MustNew(gf2poly.MustParse("x^4+x+1"))
	if got := f.Mul(gf2poly.Monomial(3), gf2poly.X()); got.String() != "x+1" {
		t.Errorf("x^3 * x = %v", got)
	}
	if got := f.Mul(gf2poly.MustParse("x^3+1"), gf2poly.MustParse("x+1")); got.String() != "x^3" {
		t.Errorf("(x^3+1)(x+1) = %v", got)
	}
}

func TestOrder(t *testing.T) {
	if got := field(t, 4).Order(); got != 16 {
		t.Errorf("|GF(2^4)| = %d", got)
	}
	f := MustNew(polytab.NIST[163])
	if got := f.Order(); got != 0 {
		t.Errorf("Order for m=163 should be 0 (too big), got %d", got)
	}
}

func TestMultiplicativeGroupOrder(t *testing.T) {
	// Every nonzero element satisfies a^(2^m - 1) = 1.
	for _, m := range []int{3, 4, 8, 11} {
		f := field(t, m)
		r := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 20; i++ {
			a := f.Rand(r)
			if a.IsZero() {
				continue
			}
			if got := f.Exp(a, 1<<uint(m)-1); !got.IsOne() {
				t.Errorf("m=%d: %v^(2^m-1) = %v", m, a, got)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16, 64, 163} {
		f := field(t, m)
		r := rand.New(rand.NewSource(int64(m) * 7))
		for i := 0; i < 25; i++ {
			a := f.Rand(r)
			if a.IsZero() {
				continue
			}
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("m=%d Inv(%v): %v", m, a, err)
			}
			if got := f.Mul(a, inv); !got.IsOne() {
				t.Errorf("m=%d: a * a^-1 = %v", m, got)
			}
		}
		if _, err := f.Inv(gf2poly.Zero()); err == nil {
			t.Errorf("m=%d: Inv(0) should fail", m)
		}
	}
}

func TestDiv(t *testing.T) {
	f := field(t, 8)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		a, b := f.Rand(r), f.Rand(r)
		if b.IsZero() {
			continue
		}
		q, err := f.Div(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Mul(q, b); !got.Equal(f.Reduce(a)) {
			t.Errorf("(a/b)*b = %v, want %v", got, a)
		}
	}
	if _, err := f.Div(gf2poly.One(), gf2poly.Zero()); err == nil {
		t.Error("Div by zero should fail")
	}
}

func TestSqrt(t *testing.T) {
	for _, m := range []int{4, 8, 17} {
		f := field(t, m)
		r := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 20; i++ {
			a := f.Rand(r)
			s := f.Sqrt(a)
			if got := f.Square(s); !got.Equal(a) {
				t.Errorf("m=%d: Sqrt(%v)² = %v", m, a, got)
			}
		}
	}
}

func TestTraceIsAdditive(t *testing.T) {
	f := field(t, 8)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		a, b := f.Rand(r), f.Rand(r)
		if f.Trace(f.Add(a, b)) != f.Trace(a)^f.Trace(b) {
			t.Errorf("Tr(a+b) != Tr(a)+Tr(b) for a=%v b=%v", a, b)
		}
	}
	// Tr is GF(2)-valued and not identically zero (it's onto).
	seen := map[uint]bool{}
	for i := 0; i < 64; i++ {
		seen[f.Trace(f.Rand(r))] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("trace not onto GF(2): %v", seen)
	}
}

func TestMontgomeryConstants(t *testing.T) {
	f := MustNew(polytab.NIST[64])
	r2 := f.MontgomeryR2()
	rr := f.Mul(f.MontgomeryR(), f.MontgomeryR())
	if !r2.Equal(rr) {
		t.Errorf("R2 = %v, want R*R = %v", r2, rr)
	}
}

func TestMonProMatchesDefinition(t *testing.T) {
	// MonPro(a,b) * x^m = a*b in the field.
	for _, m := range []int{4, 8, 64} {
		f := field(t, m)
		r := rand.New(rand.NewSource(int64(m) + 99))
		xm := f.Reduce(gf2poly.Monomial(m))
		for i := 0; i < 15; i++ {
			a, b := f.Rand(r), f.Rand(r)
			got := f.Mul(f.MonPro(a, b), xm)
			want := f.Mul(a, b)
			if !got.Equal(want) {
				t.Errorf("m=%d: MonPro(a,b)*x^m = %v, want %v", m, got, want)
			}
		}
	}
}

func TestMonProComposition(t *testing.T) {
	// MonPro(MonPro(a,b), R2) = a*b — the identity the flattened Montgomery
	// multiplier netlists rely on.
	f := MustNew(polytab.NIST[64])
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 15; i++ {
		a, b := f.Rand(r), f.Rand(r)
		got := f.MonPro(f.MonPro(a, b), f.MontgomeryR2())
		if want := f.Mul(a, b); !got.Equal(want) {
			t.Errorf("MonPro composition = %v, want %v", got, want)
		}
	}
}

// --- field axioms as properties --------------------------------------------

func TestPropFieldAxioms(t *testing.T) {
	f := MustNew(polytab.NIST[64])
	// testing/quick generates raw coefficient words; FromWords + Reduce maps
	// them into the field.
	elem := func(w [2]uint64) gf2poly.Poly { return f.Reduce(gf2poly.FromWords(w[:])) }

	assoc := func(aw, bw, cw [2]uint64) bool {
		a, b, c := elem(aw), elem(bw), elem(cw)
		return f.Mul(f.Mul(a, b), c).Equal(f.Mul(a, f.Mul(b, c)))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 60}); err != nil {
		t.Error("mul associativity:", err)
	}

	distrib := func(aw, bw, cw [2]uint64) bool {
		a, b, c := elem(aw), elem(bw), elem(cw)
		return f.Mul(a, f.Add(b, c)).Equal(f.Add(f.Mul(a, b), f.Mul(a, c)))
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 60}); err != nil {
		t.Error("distributivity:", err)
	}

	sqr := func(aw [2]uint64) bool {
		a := elem(aw)
		return f.Square(a).Equal(f.Mul(a, a))
	}
	if err := quick.Check(sqr, nil); err != nil {
		t.Error("square:", err)
	}

	// Freshman's dream: (a+b)² = a² + b².
	frosh := func(aw, bw [2]uint64) bool {
		a, b := elem(aw), elem(bw)
		return f.Square(f.Add(a, b)).Equal(f.Add(f.Square(a), f.Square(b)))
	}
	if err := quick.Check(frosh, nil); err != nil {
		t.Error("(a+b)^2 = a^2+b^2:", err)
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustNew(polytab.NIST[233])
	r := rand.New(rand.NewSource(5))
	x, y := f.Rand(r), f.Rand(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(x, y)
	}
}

func BenchmarkInv(b *testing.B) {
	f := MustNew(polytab.NIST[233])
	r := rand.New(rand.NewSource(5))
	x := f.Rand(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Inv(x); err != nil {
			b.Fatal(err)
		}
	}
}
