package gf2m

import (
	"fmt"
	"math/bits"
	"math/rand"

	"github.com/galoisfield/gfre/internal/gf2poly"
)

// Element-level analysis: conjugates, minimal polynomials, multiplicative
// orders and generator tests. These are the standard tools for studying a
// recovered field — e.g. checking whether the polynomial a netlist was
// built on is primitive (x generates the multiplicative group), which
// affects the usable exponentiation tricks in the surrounding datapath.

// Conjugates returns the Frobenius orbit of a: {a, a², a⁴, …} up to the
// first repeat. Its size d divides m and is the degree of a's minimal
// polynomial.
func (f *Field) Conjugates(a gf2poly.Poly) []gf2poly.Poly {
	a = f.Reduce(a)
	out := []gf2poly.Poly{a}
	c := f.Square(a)
	for !c.Equal(a) {
		out = append(out, c)
		c = f.Square(c)
	}
	return out
}

// MinimalPolynomial returns the minimal polynomial of a over GF(2): the
// monic polynomial Π (x + c) over a's conjugates c. The product has all
// coefficients in GF(2); it is irreducible of degree dividing m, and for
// a = x it equals the field's defining polynomial.
func (f *Field) MinimalPolynomial(a gf2poly.Poly) (gf2poly.Poly, error) {
	conj := f.Conjugates(a)
	// coeffs[i] is the GF(2^m) coefficient of x^i; start with the
	// constant polynomial 1.
	coeffs := []gf2poly.Poly{gf2poly.One()}
	for _, c := range conj {
		next := make([]gf2poly.Poly, len(coeffs)+1)
		for i := range next {
			next[i] = gf2poly.Zero()
		}
		for i, co := range coeffs {
			// (x + c)·co·x^i contributes co to x^(i+1) and c·co to x^i.
			next[i+1] = next[i+1].Add(co)
			next[i] = next[i].Add(f.Mul(c, co))
		}
		coeffs = next
	}
	p := gf2poly.Zero()
	for i, co := range coeffs {
		switch {
		case co.IsZero():
		case co.IsOne():
			p = p.Add(gf2poly.Monomial(i))
		default:
			return gf2poly.Poly{}, fmt.Errorf("gf2m: minimal polynomial has non-GF(2) coefficient %v (internal error)", co)
		}
	}
	return p, nil
}

// factorUint64 returns the distinct prime factors of n (n >= 2) using trial
// division followed by Pollard's rho for the large cofactors.
func factorUint64(n uint64) []uint64 {
	var primes []uint64
	add := func(p uint64) {
		for _, q := range primes {
			if q == p {
				return
			}
		}
		primes = append(primes, p)
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		for n%p == 0 {
			add(p)
			n /= p
		}
	}
	var rec func(n uint64)
	rec = func(n uint64) {
		if n == 1 {
			return
		}
		if isPrimeU64(n) {
			add(n)
			return
		}
		d := pollardRho(n)
		rec(d)
		rec(n / d)
	}
	rec(n)
	return primes
}

// mulmod computes a·b mod m without overflow. Operands are reduced mod m
// first, so the 128-bit product's high word is < m and bits.Div64 is safe.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func powmod(a, e, m uint64) uint64 {
	r := uint64(1 % m)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulmod(r, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return r
}

// isPrimeU64 is deterministic Miller–Rabin for 64-bit integers.
func isPrimeU64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	s := 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		ok := false
		for i := 0; i < s-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// pollardRho finds a nontrivial factor of a composite odd n.
func pollardRho(n uint64) uint64 {
	if n%2 == 0 {
		return 2
	}
	r := rand.New(rand.NewSource(int64(n)))
	for {
		x := r.Uint64()%(n-2) + 2
		y := x
		c := r.Uint64()%(n-1) + 1
		d := uint64(1)
		for d == 1 {
			x = (mulmod(x, x, n) + c) % n
			y = (mulmod(y, y, n) + c) % n
			y = (mulmod(y, y, n) + c) % n
			diff := x - y
			if x < y {
				diff = y - x
			}
			if diff == 0 {
				break
			}
			d = gcdU64(diff, n)
		}
		if d != 1 && d != n {
			return d
		}
	}
}

func gcdU64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ElementOrder returns the multiplicative order of a nonzero element. Supported
// for m <= 63 (the order divides 2^m − 1, which must fit and be factorable).
func (f *Field) ElementOrder(a gf2poly.Poly) (uint64, error) {
	if f.m > 63 {
		return 0, fmt.Errorf("gf2m: Order supported for m <= 63, have m=%d", f.m)
	}
	a = f.Reduce(a)
	if a.IsZero() {
		return 0, fmt.Errorf("gf2m: zero has no multiplicative order")
	}
	group := uint64(1)<<uint(f.m) - 1
	ord := group
	for _, p := range factorUint64(group) {
		for ord%p == 0 && f.Exp(a, ord/p).IsOne() {
			ord /= p
		}
	}
	if !f.Exp(a, ord).IsOne() {
		return 0, fmt.Errorf("gf2m: order computation failed (internal error)")
	}
	return ord, nil
}

// IsGenerator reports whether a generates the multiplicative group — for
// a = x this says whether the field's defining polynomial is primitive.
func (f *Field) IsGenerator(a gf2poly.Poly) (bool, error) {
	ord, err := f.ElementOrder(a)
	if err != nil {
		return false, err
	}
	return ord == uint64(1)<<uint(f.m)-1, nil
}
