// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark generates the paper's benchmark
// circuit outside the timed region and measures the extraction pipeline
// (backward rewriting in 16 threads + Algorithm 2), i.e. exactly what the
// paper's runtime columns time.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTableI -benchtime=3x
//
// The larger Montgomery sizes (283, 409) of Table II are exercised by
// cmd/gfbench rather than here to keep `go test -bench=.` minutes-scale;
// see EXPERIMENTS.md for full-size measured numbers.
package gfre_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	gfre "github.com/galoisfield/gfre"
	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/eval"
)

func benchExtraction(b *testing.B, n *gfre.Netlist, want gfre.Poly) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, err := gfre.Extract(n, gfre.Options{Threads: eval.Threads, SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		if !ext.P.Equal(want) {
			b.Fatalf("extracted %v, want %v", ext.P, want)
		}
	}
}

// BenchmarkTableI: Mastrovito multipliers with NIST-recommended P(x),
// m = 64..571 (all rows of the paper's Table I).
func BenchmarkTableI(b *testing.B) {
	for _, m := range []int{64, 96, 163, 233, 283, 409, 571} {
		p, ok := gfre.NISTPolynomial(m)
		if !ok {
			b.Fatal("missing NIST polynomial")
		}
		n, err := gfre.NewMastrovitoMatrix(m, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Mastrovito/m=%d", m), func(b *testing.B) {
			benchExtraction(b, n, p)
		})
	}
}

// BenchmarkTableII: flattened Montgomery multipliers with NIST P(x).
// The paper's rows run to m=409 (which memory-outs at 32 GB there); the
// heavyweight tail lives in cmd/gfbench.
func BenchmarkTableII(b *testing.B) {
	for _, m := range []int{64, 96, 163, 233} {
		p, ok := gfre.NISTPolynomial(m)
		if !ok {
			b.Fatal("missing NIST polynomial")
		}
		n, err := gfre.NewMontgomery(m, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Montgomery/m=%d", m), func(b *testing.B) {
			benchExtraction(b, n, p)
		})
	}
}

// BenchmarkTableIII: extraction on synthesized (optimized + mapped)
// multipliers, the Table III scenario.
func BenchmarkTableIII(b *testing.B) {
	for _, m := range []int{64, 163} {
		p, _ := gfre.NISTPolynomial(m)
		mast, err := gfre.NewMastrovitoMatrix(m, p)
		if err != nil {
			b.Fatal(err)
		}
		mastSyn, err := gfre.Synthesize(mast)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Mastrovito-syn/m=%d", m), func(b *testing.B) {
			benchExtraction(b, mastSyn, p)
		})
		mont, err := gfre.NewMontgomery(m, p)
		if err != nil {
			b.Fatal(err)
		}
		montSyn, err := gfre.Synthesize(mont)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Montgomery-syn/m=%d", m), func(b *testing.B) {
			benchExtraction(b, montSyn, p)
		})
	}
}

// BenchmarkTableIV: GF(2^233) Mastrovito multipliers built with the four
// architecture-optimal polynomials (Intel-Pentium, ARM, MSP430, NIST).
func BenchmarkTableIV(b *testing.B) {
	for _, ap := range gfre.Arch233Polynomials() {
		n, err := gfre.NewMastrovitoMatrix(233, ap.P)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ap.Arch, func(b *testing.B) {
			benchExtraction(b, n, ap.P)
		})
	}
}

// BenchmarkFigure4: the per-output-bit rewriting that Figure 4 profiles —
// raw Algorithm 1 across all 233 output bits, without Algorithm 2 on top,
// for the fastest (NIST) and slowest (Pentium) polynomial of Table IV.
func BenchmarkFigure4(b *testing.B) {
	for _, arch := range []string{"NIST-recommended", "Intel-Pentium"} {
		var p gfre.Poly
		for _, ap := range gfre.Arch233Polynomials() {
			if ap.Arch == arch {
				p = ap.P
			}
		}
		n, err := gfre.NewMastrovitoMatrix(233, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(arch, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rw, err := gfre.Rewrite(n, gfre.RewriteOptions{Threads: eval.Threads})
				if err != nil {
					b.Fatal(err)
				}
				if len(rw.Bits) != 233 {
					b.Fatal("missing bits")
				}
			}
		})
	}
}

// BenchmarkExtract measures the telemetry layer's cost on the extraction
// pipeline: "norecorder" is the nil-recorder path (every instrumentation
// site reduced to one predictable branch — expected within 2% of the
// pre-telemetry pipeline), "recorder" attaches a full recorder with an
// in-memory sink, i.e. the -json / gfbench configuration, "journal"
// attaches the bounded ring-buffer journal that backs gfred's SSE streams
// (the gfred worker configuration — expected within 3% of "norecorder"),
// and "governed"
// turns on the full resource governor (context deadline, per-cone deadline,
// term budget) on a clean circuit that never trips any limit — expected
// within 2% of "norecorder", since governance on the happy path is one
// counter compare and one atomic load per substitution batch.
func BenchmarkExtract(b *testing.B) {
	p, _ := gfre.NISTPolynomial(64)
	n, err := gfre.NewMastrovitoMatrix(64, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("norecorder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext, err := gfre.Extract(n, gfre.Options{Threads: eval.Threads, SkipVerify: true})
			if err != nil {
				b.Fatal(err)
			}
			if !ext.P.Equal(p) {
				b.Fatal("wrong P")
			}
		}
	})
	b.Run("recorder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := gfre.NewRecorder(gfre.NewMemorySink())
			ext, err := gfre.Extract(n, gfre.Options{Threads: eval.Threads, SkipVerify: true, Recorder: rec})
			if err != nil {
				b.Fatal(err)
			}
			if !ext.P.Equal(p) {
				b.Fatal("wrong P")
			}
		}
	})
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := gfre.NewRecorder(gfre.NewJournal(0))
			ext, err := gfre.Extract(n, gfre.Options{Threads: eval.Threads, SkipVerify: true, Recorder: rec})
			if err != nil {
				b.Fatal(err)
			}
			if !ext.P.Equal(p) {
				b.Fatal("wrong P")
			}
		}
	})
	b.Run("governed", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext, err := gfre.Extract(n, gfre.Options{
				Threads: eval.Threads, SkipVerify: true,
				Ctx: ctx, ConeDeadline: time.Hour, BudgetTerms: 1 << 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !ext.P.Equal(p) {
				b.Fatal("wrong P")
			}
		}
	})
}

// BenchmarkConeSort isolates the per-bit cone construction that precedes
// every backward-rewriting pass: topologically sorting the fan-in cone of
// all 64 output bits of the Montgomery multiplier (the design where cone
// overlap is heaviest — each MonPro output cone spans nearly the whole
// circuit). Before the bitset-DFS rewrite this step cost more than the
// rewriting itself at m=64 (206ms of a 377ms total); now it is a
// counting-sort sweep over dense gate IDs and should stay an order of
// magnitude below the rewrite time reported by BenchmarkTableII.
func BenchmarkConeSort(b *testing.B) {
	p, _ := gfre.NISTPolynomial(64)
	n, err := gfre.NewMontgomery(64, p)
	if err != nil {
		b.Fatal(err)
	}
	outs := n.Outputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, root := range outs {
			total += len(n.Cone(root))
		}
		if total == 0 {
			b.Fatal("empty cones")
		}
	}
}

// BenchmarkSubstitute measures the rewriting engine's inner loop at the
// root level: a chain of variable eliminations against a polynomial sized
// like a mid-rewrite Montgomery cone frontier (hundreds of live terms).
// Each iteration rebuilds the chain from a cloned start state so the timed
// region is substitution work only, not interning warm-up. The companion
// zero-alloc guard for the XOR-merge path that Substitute drives lives in
// internal/anf (TestSteadyStateXORMergeZeroAllocs).
func BenchmarkSubstitute(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	base := anf.NewPoly()
	for i := 0; i < 300; i++ {
		var vars []anf.Var
		for v := 1; v <= 16; v++ {
			if rng.Intn(3) == 0 {
				vars = append(vars, anf.Var(v))
			}
		}
		base.Toggle(anf.NewMono(vars...))
	}
	// One gate-style expansion per eliminated variable, over strictly lower
	// variables so the chain is acyclic (as in backward rewriting).
	exprs := make([]anf.Poly, 17)
	for v := 16; v >= 9; v-- {
		e := anf.NewPoly()
		for t := 0; t < 3; t++ {
			a := anf.Var(1 + rng.Intn(v-1))
			bb := anf.Var(1 + rng.Intn(v-1))
			e.Toggle(anf.MulMono(anf.NewMono(a), anf.NewMono(bb)))
		}
		exprs[v] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base.Clone()
		for v := 16; v >= 9; v-- {
			p.Substitute(anf.Var(v), exprs[v])
		}
		if p.Len() == 0 && base.Len() != 0 {
			b.Fatal("substitution chain collapsed unexpectedly")
		}
	}
}

// BenchmarkSectionIID: the XOR-cost model used throughout Section II-D.
func BenchmarkSectionIID(b *testing.B) {
	p, _ := gfre.NISTPolynomial(571)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if gfre.ReductionXORCount(p) == 0 {
			b.Fatal("zero cost")
		}
	}
}

// BenchmarkAblationThreads sweeps the worker-pool size for a fixed design —
// the knob the paper exposes ("the users can adjust the parallel effort
// depending on the hardware resource").
func BenchmarkAblationThreads(b *testing.B) {
	p, _ := gfre.NISTPolynomial(163)
	n, err := gfre.NewMastrovitoMatrix(163, p)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ext, err := gfre.Extract(n, gfre.Options{Threads: threads, SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				if !ext.P.Equal(p) {
					b.Fatal("wrong P")
				}
			}
		})
	}
}

// BenchmarkAblationArchitectures compares extraction cost across all five
// implemented multiplier architectures at a fixed field — the generalized
// form of the paper's Mastrovito-vs-Montgomery comparison.
func BenchmarkAblationArchitectures(b *testing.B) {
	p, _ := gfre.NISTPolynomial(64)
	builders := []struct {
		name  string
		build func() (*gfre.Netlist, error)
	}{
		{"mastrovito", func() (*gfre.Netlist, error) { return gfre.NewMastrovito(64, p) }},
		{"matrix", func() (*gfre.Netlist, error) { return gfre.NewMastrovitoMatrix(64, p) }},
		{"karatsuba", func() (*gfre.Netlist, error) { return gfre.NewKaratsuba(64, p) }},
		{"digitserial4", func() (*gfre.Netlist, error) { return gfre.NewDigitSerial(64, p, 4) }},
		{"montgomery", func() (*gfre.Netlist, error) { return gfre.NewMontgomery(64, p) }},
	}
	for _, tc := range builders {
		n, err := tc.build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			benchExtraction(b, n, p)
		})
	}
}

// BenchmarkAblationPortInference measures the overhead of inferring the
// port mapping versus trusting port names.
func BenchmarkAblationPortInference(b *testing.B) {
	p, _ := gfre.NISTPolynomial(64)
	n, err := gfre.NewMastrovito(64, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("named", func(b *testing.B) {
		benchExtraction(b, n, p)
	})
	b.Run("inferred", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ext, _, err := gfre.ExtractInferred(n, gfre.Options{Threads: eval.Threads, SkipVerify: true})
			if err != nil {
				b.Fatal(err)
			}
			if !ext.P.Equal(p) {
				b.Fatal("wrong P")
			}
		}
	})
}

// BenchmarkAblationForwardVsBackward: the paper's backward, per-output-cone
// rewriting against the naive forward-abstraction baseline that materializes
// an input-level expression for every internal gate.
func BenchmarkAblationForwardVsBackward(b *testing.B) {
	p, _ := gfre.NISTPolynomial(64)
	mont, err := gfre.NewMontgomery(64, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("backward16/montgomery64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gfre.Rewrite(mont, gfre.RewriteOptions{Threads: eval.Threads}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward/montgomery64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gfre.RewriteForward(mont); err != nil {
				b.Fatal(err)
			}
		}
	})
}
