module github.com/galoisfield/gfre

go 1.22
