// Package gfre reverse engineers the irreducible polynomial P(x) used by a
// gate-level GF(2^m) multiplier, implementing the computer-algebra technique
// of Yu, Holcomb and Ciesielski, "Reverse Engineering of Irreducible
// Polynomials in GF(2^m) Arithmetic" (DATE 2017).
//
// The library takes a flattened combinational netlist — Mastrovito,
// Montgomery, or anything a synthesis tool produced from them — and, with no
// knowledge of the architecture:
//
//  1. rewrites every output bit backwards through its logic cone into a
//     canonical algebraic normal form (ANF), one worker per output bit;
//  2. locates the first out-field product set P_m = {a_i·b_j : i+j = m} in
//     those expressions to reconstruct P(x) = x^m + Σ{x^i : P_m ⊆ EXP_i};
//  3. verifies the netlist against a golden GF(2^m) specification built from
//     the recovered P(x) — a complete equivalence check, since ANF is
//     canonical.
//
// # Quick start
//
//	n, _ := gfre.NewMastrovito(163, gfre.MustParsePoly("x^163+x^80+x^47+x^9+1"))
//	ext, err := gfre.Extract(n, gfre.Options{Threads: 16})
//	if err != nil { ... }
//	fmt.Println(ext.P) // x^163+x^80+x^47+x^9+1, verified
//
// Netlists can also be read from equation-format or BLIF files (ReadEQN,
// ReadBLIF), generated in several architectures (NewMastrovito,
// NewMastrovitoMatrix, NewMontgomery), and run through the synthesis
// pipeline (Synthesize, TechMap) before extraction.
//
// The exported identifiers are aliases of the implementation packages under
// internal/; see their doc comments for the full API of each subsystem.
package gfre

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/galoisfield/gfre/internal/anf"
	"github.com/galoisfield/gfre/internal/checkpoint"
	"github.com/galoisfield/gfre/internal/diffcheck"
	"github.com/galoisfield/gfre/internal/extract"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/netlint"
	"github.com/galoisfield/gfre/internal/netlist"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/opt"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/rewrite"
	"github.com/galoisfield/gfre/internal/shard"
)

// Core types, re-exported from the implementation packages.
type (
	// Poly is a univariate polynomial over GF(2) (bit-vector backed).
	Poly = gf2poly.Poly
	// Netlist is a combinational gate-level circuit.
	Netlist = netlist.Netlist
	// GateType enumerates the supported cell functions.
	GateType = netlist.GateType
	// Field is a binary extension field GF(2^m) for golden-model arithmetic.
	Field = gf2m.Field
	// Extraction is the result of reverse engineering a multiplier.
	Extraction = extract.Extraction
	// Options configures extraction (thread count, port prefixes, verify).
	Options = extract.Options
	// RewriteResult carries per-output-bit expressions and statistics.
	RewriteResult = rewrite.Result
	// RewriteOptions configures a raw rewriting run.
	RewriteOptions = rewrite.Options
	// BitStats is the per-output-bit cost record (Figure 4's data).
	BitStats = rewrite.BitStats
	// ConeStatus classifies how a single output cone ended (ok, budget,
	// timeout, panic, cancelled, error).
	ConeStatus = rewrite.Status
	// Diagnosis is the outcome of fault-tolerant extraction: recovered
	// P(x), per-bit states, and the ranked suspect-gate set.
	Diagnosis = extract.Diagnosis
	// BitDiagnosis is the per-output-bit verdict inside a Diagnosis.
	BitDiagnosis = extract.BitDiagnosis
	// Suspect is one candidate trojan location in a Diagnosis.
	Suspect = extract.Suspect
	// MapStyle selects the technology-mapping flavor.
	MapStyle = opt.MapStyle
	// ArchPoly pairs an architecture label with its optimal polynomial.
	ArchPoly = polytab.ArchPoly

	// Recorder is the telemetry hub threaded through Options /
	// RewriteOptions: phase spans, per-bit events, metrics registry.
	// nil disables instrumentation at negligible cost.
	Recorder = obs.Recorder
	// Span is an in-flight phase timing opened by Recorder.StartSpan.
	Span = obs.Span
	// SpanRecord is one completed phase with its wall-clock cost.
	SpanRecord = obs.SpanRecord
	// TelemetryEvent is one telemetry record (the NDJSON line schema).
	TelemetryEvent = obs.Event
	// TelemetrySink consumes telemetry events (NDJSON, progress, memory).
	TelemetrySink = obs.Sink
	// MetricsSnapshot is a point-in-time copy of every recorded metric.
	MetricsSnapshot = obs.Snapshot
	// NDJSONSink streams events as one JSON object per line.
	NDJSONSink = obs.NDJSONSink
	// ProgressSink renders a live per-bit completion ticker.
	ProgressSink = obs.ProgressSink
	// MemorySink captures events in memory (the test hook).
	MemorySink = obs.MemorySink
	// Journal is the bounded replayable event log (a TelemetrySink): it
	// assigns sequence numbers and backs SSE resume and gftop tailing.
	Journal = obs.Journal
	// TraceNode is one node of the hierarchical phase/cone trace tree
	// assembled from a recorder's completed spans.
	TraceNode = obs.TraceNode
	// AnomalyConfig tunes the predicted-vs-actual cone cost anomaly stage
	// armed by Recorder.EnableConeAnomalies (zero value = defaults).
	AnomalyConfig = obs.AnomalyConfig
	// HistogramBucket is one cumulative le-bound bucket of a histogram
	// snapshot, matching the Prometheus exposition.
	HistogramBucket = obs.HistogramBucket

	// CheckpointManager persists per-cone extraction progress crash-safely
	// and restores it for resumed runs. Pass one via Options.Checkpoint.
	CheckpointManager = checkpoint.Manager
	// CheckpointSnapshot is the durable state of one extraction run.
	CheckpointSnapshot = checkpoint.Snapshot

	// LintReport is the outcome of the netlint preflight static analysis
	// (rides on Extraction.Lint when Options.Preflight is set).
	LintReport = netlint.Report
	// LintFinding is one static-analysis rule violation or observation.
	LintFinding = netlint.Finding
	// LintOptions configures a standalone lint run.
	LintOptions = netlint.Options
	// LintSeverity classifies a finding: LintError, LintWarn or LintInfo.
	LintSeverity = netlint.Severity
)

// Lint finding severities (keys of LintReport.Counts).
const (
	LintError = netlint.SevError
	LintWarn  = netlint.SevWarn
	LintInfo  = netlint.SevInfo
)

// Extraction failure classes; test with errors.Is.
var (
	ErrNotMultiplier  = extract.ErrNotMultiplier
	ErrNotIrreducible = extract.ErrNotIrreducible
	ErrMismatch       = extract.ErrMismatch
	ErrBadPorts       = extract.ErrBadPorts
	// ErrConsensus means fault-tolerant extraction could not determine a
	// unique P(x) within the configured tolerance.
	ErrConsensus = extract.ErrConsensus
	// ErrParse tags malformed netlist input (all readers wrap it).
	ErrParse = netlist.ErrParse
	// Resource-governance failures from the rewriting engine.
	ErrBudgetExceeded  = rewrite.ErrBudgetExceeded
	ErrConeTimeout     = rewrite.ErrConeTimeout
	ErrConePanic       = rewrite.ErrConePanic
	ErrTooManyFailures = rewrite.ErrTooManyFailures
	// ErrCheckpoint means a snapshot file exists but cannot be trusted
	// (truncated, checksum mismatch, version skew, foreign netlist);
	// ErrNoCheckpoint means none exists at all.
	ErrCheckpoint   = checkpoint.ErrCheckpoint
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrLintFindings means the preflight static analysis found error-level
	// defects and the pipeline refused to start.
	ErrLintFindings = netlint.ErrFindings
)

// Technology-mapping styles.
const (
	MapFuseInverters = opt.MapFuseInverters
	MapNandHeavy     = opt.MapNandHeavy
)

// Gate types, for callers that construct or inspect netlists directly.
const (
	Input  = netlist.Input
	Const0 = netlist.Const0
	Const1 = netlist.Const1
	Buf    = netlist.Buf
	Not    = netlist.Not
	And    = netlist.And
	Or     = netlist.Or
	Xor    = netlist.Xor
	Xnor   = netlist.Xnor
	Nand   = netlist.Nand
	Nor    = netlist.Nor
	Aoi21  = netlist.Aoi21
	Oai21  = netlist.Oai21
	Aoi22  = netlist.Aoi22
	Oai22  = netlist.Oai22
	Mux    = netlist.Mux
	Lut    = netlist.Lut
)

// NewNetlist returns an empty netlist to be populated with AddInput,
// AddGate, AddLut and MarkOutput.
func NewNetlist(name string) *Netlist { return netlist.New(name) }

// ParsePoly reads a polynomial like "x^233+x^74+1".
func ParsePoly(s string) (Poly, error) { return gf2poly.Parse(s) }

// MustParsePoly is ParsePoly that panics on error.
func MustParsePoly(s string) Poly { return gf2poly.MustParse(s) }

// NISTPolynomial returns the NIST-recommended irreducible polynomial for
// GF(2^m), if m is one of the standardized sizes (64..571).
func NISTPolynomial(m int) (Poly, bool) {
	p, ok := polytab.NIST[m]
	return p, ok
}

// DefaultPolynomial returns an irreducible polynomial of degree m: the NIST
// choice when standardized, otherwise the first irreducible trinomial, then
// pentanomial.
func DefaultPolynomial(m int) (Poly, error) { return polytab.Default(m) }

// Arch233Polynomials lists the architecture-optimal GF(2^233) polynomials of
// the paper's Table IV (Intel-Pentium, ARM, MSP430, NIST).
func Arch233Polynomials() []ArchPoly { return append([]ArchPoly(nil), polytab.Arch233...) }

// ReductionXORCount is the Section II-D cost model: the number of XOR
// operations the field reduction of a multiplier built on p needs.
func ReductionXORCount(p Poly) int { return polytab.ReductionXORCount(p) }

// NewField constructs GF(2^m) arithmetic from an irreducible polynomial.
func NewField(p Poly) (*Field, error) { return gf2m.New(p) }

// NewMastrovito generates a tabular Mastrovito multiplier netlist
// (shared partial-product sums; the Figure 1 construction).
func NewMastrovito(m int, p Poly) (*Netlist, error) { return gen.Mastrovito(m, p) }

// NewMastrovitoMatrix generates the classic matrix-form Mastrovito
// multiplier with fully independent per-output cones (the redundant
// benchmark style of Tables I and III).
func NewMastrovitoMatrix(m int, p Poly) (*Netlist, error) { return gen.MastrovitoMatrix(m, p) }

// NewMontgomery generates a flattened Montgomery multiplier:
// MonPro(MonPro(A,B), x^{2m} mod P) = A·B mod P (Table II's benchmarks).
func NewMontgomery(m int, p Poly) (*Netlist, error) { return gen.Montgomery(m, p) }

// NewMonPro generates a standalone Montgomery-product block computing
// A·B·x^(-m) mod P.
func NewMonPro(m int, p Poly) (*Netlist, error) { return gen.MonPro(m, p) }

// NewKaratsuba generates a GF(2^m) multiplier whose polynomial product uses
// recursive Karatsuba decomposition before the field reduction.
func NewKaratsuba(m int, p Poly) (*Netlist, error) { return gen.Karatsuba(m, p) }

// NewDigitSerial generates a least-significant-digit-first digit-serial
// GF(2^m) multiplier with digit width d.
func NewDigitSerial(m int, p Poly, d int) (*Netlist, error) { return gen.DigitSerial(m, p, d) }

// ReadEQN parses an equation-format netlist (ABC-style .eqn with ^ for XOR).
func ReadEQN(r io.Reader, name string) (*Netlist, error) { return netlist.ReadEQN(r, name) }

// ReadBLIF parses a combinational BLIF netlist.
func ReadBLIF(r io.Reader) (*Netlist, error) { return netlist.ReadBLIF(r) }

// ReadVerilog parses a structural gate-level Verilog netlist (the flavor
// synthesis tools emit for flattened designs).
func ReadVerilog(r io.Reader) (*Netlist, error) { return netlist.ReadVerilog(r) }

// Simplify runs constant propagation, cleanup and structural hashing.
func Simplify(n *Netlist) (*Netlist, error) { return opt.Simplify(n) }

// BalanceXor rebalances XOR trees with mod-2 leaf cancellation.
func BalanceXor(n *Netlist) (*Netlist, error) { return opt.BalanceXor(n) }

// TechMap maps the netlist onto a standard-cell-style library.
func TechMap(n *Netlist, style MapStyle) (*Netlist, error) { return opt.TechMap(n, style) }

// Synthesize runs the full optimization pipeline used for the paper's
// Table III ("optimized and mapped" multipliers).
func Synthesize(n *Netlist) (*Netlist, error) { return opt.Synthesize(n) }

// SynthesizeObserved is Synthesize with every pass bracketed in a phase
// span on rec (opt.simplify, opt.balance-xor, opt.techmap, opt.sweep).
func SynthesizeObserved(n *Netlist, rec *Recorder) (*Netlist, error) {
	return opt.SynthesizeObserved(n, rec)
}

// NewRecorder returns a telemetry recorder fanning out to the given sinks
// (none is valid: spans and metrics are still captured for Spans/Snapshot).
// Pass it via Options.Recorder / RewriteOptions.Recorder.
func NewRecorder(sinks ...TelemetrySink) *Recorder { return obs.NewRecorder(sinks...) }

// NewNDJSONSink streams every telemetry event to w as one JSON object per
// line; see the package obs doc comment for the event schema.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return obs.NewNDJSONSink(w) }

// NewProgressSink renders a human-readable live ticker (phase boundaries,
// one line per completed output bit) to w, typically os.Stderr.
func NewProgressSink(w io.Writer) *ProgressSink { return obs.NewProgressSink(w) }

// NewMemorySink captures telemetry events in memory, for tests and
// programmatic inspection.
func NewMemorySink() *MemorySink { return obs.NewMemorySink() }

// NewJournal returns a bounded in-memory event journal (capacity <= 0
// selects the default). Attach it to a recorder as a sink to capture a
// replayable, sequence-numbered window of the run's telemetry.
func NewJournal(capacity int) *Journal { return obs.NewJournal(capacity) }

// BuildTraceTree assembles completed span records (Recorder.Spans) into
// the parent/child trace forest rendered by WriteTraceTree.
func BuildTraceTree(spans []SpanRecord) []*TraceNode { return obs.BuildTraceTree(spans) }

// WriteTraceTree renders a trace forest as an indented tree, one span per
// line with its duration, attributes and non-ok status.
func WriteTraceTree(w io.Writer, roots []*TraceNode) { obs.WriteTraceTree(w, roots) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format 0.0.4 under the given namespace prefix.
func WritePrometheus(w io.Writer, s MetricsSnapshot, namespace string) error {
	return obs.WritePrometheus(w, s, namespace)
}

// NewCheckpointManager returns a checkpoint manager persisting extraction
// progress into dir, saving at most once per throttle interval (throttle < 0
// selects the 250ms default, 0 saves on every completed cone). Assign it to
// Options.Checkpoint; set Options.Resume to adopt an existing snapshot so
// only pending cones are re-rewritten.
func NewCheckpointManager(dir string, throttle time.Duration) *CheckpointManager {
	return checkpoint.NewManager(dir, throttle)
}

// LoadCheckpoint reads and validates the snapshot in dir without starting a
// run — for inspection tools and the service's restart recovery.
func LoadCheckpoint(dir string) (*CheckpointSnapshot, error) { return checkpoint.Load(dir) }

// Rewrite extracts the canonical ANF of every output bit (Algorithm 1,
// parallel per Theorem 2) without interpreting the result.
func Rewrite(n *Netlist, opts RewriteOptions) (*RewriteResult, error) {
	return rewrite.Outputs(n, opts)
}

// Extract reverse engineers the irreducible polynomial of a multiplier
// netlist (Algorithm 2) and, unless disabled, verifies the design against
// the golden specification built from the recovered P(x).
func Extract(n *Netlist, opts Options) (*Extraction, error) {
	return extract.IrreduciblePolynomial(n, opts)
}

// InferredPorts is a port mapping recovered from the expressions alone.
type InferredPorts = extract.InferredPorts

// ExtractInferred reverse engineers P(x) from a multiplier whose port
// naming and ordering are unknown or scrambled: the operand partition, bit
// order and output order are inferred from the rewritten expressions before
// Algorithm 2 runs — an extension beyond the paper, which assumes canonical
// port names.
func ExtractInferred(n *Netlist, opts Options) (*Extraction, *InferredPorts, error) {
	return extract.IrreduciblePolynomialInferred(n, opts)
}

// Verify re-checks an extraction against the golden specification.
func Verify(n *Netlist, ext *Extraction) error { return extract.Verify(n, ext) }

// Lint statically analyzes a constructed netlist without extracting:
// dead/constant/redundant logic, multiplier I/O shape and naming,
// architecture fingerprint, and per-output cone-cost prediction.
func Lint(n *Netlist, opts LintOptions) *LintReport { return netlint.Analyze(n, opts) }

// LintSource lints raw netlist text. Source-level rules (combinational
// cycles with witness, multi-driven and undriven signals) run on the text
// itself — defects the netlist constructors reject outright — followed by
// the full DAG rule set when the design parses. format is "eqn", "blif",
// "verilog" or "" to auto-detect.
func LintSource(data []byte, filename, format string, opts LintOptions) *LintReport {
	return netlint.AnalyzeSource(data, filename, format, opts)
}

// ShardOptions tunes the scheduling side of ExtractSharded; the extraction
// semantics stay in Options.
type ShardOptions = shard.ExtractOptions

// ShardStats carries the robustness counters of a sharded run (lease
// expiries, steals, fenced zombie results, cache reuse).
type ShardStats = shard.Stats

// ExtractSharded reverse engineers P(x) with lease-based sharded rewriting:
// every output cone becomes an independently failable lease executed by a
// pool of local workers (and remote gfred peers when a hub is configured).
// Worker death, duplicated submissions and stragglers are absorbed by lease
// expiry, the epoch fence and work stealing; failed cones degrade into
// consensus extraction instead of hanging the run.
func ExtractSharded(n *Netlist, opts Options, sopts ShardOptions) (*Extraction, *Diagnosis, ShardStats, error) {
	return shard.Extract(n, opts, sopts)
}

// ExtractDiagnose is fault-tolerant extraction with localization: up to
// opts.Tolerate output cones may fail (budget, timeout, panic) or deviate
// from the golden model (tampering) while P(x) is still recovered by
// per-bit consensus, and the returned Diagnosis ranks candidate trojan
// gates by how completely force-complementing them on the deviating test
// vectors repairs the outputs. The Diagnosis is non-nil even on error,
// carrying whatever was learned.
func ExtractDiagnose(n *Netlist, opts Options) (*Extraction, *Diagnosis, error) {
	return extract.Diagnose(n, opts)
}

// SimulationCrossCheck validates an extraction by random simulation against
// software field multiplication — an independent path that does not rely on
// the rewriting engine.
func SimulationCrossCheck(n *Netlist, ext *Extraction, trials int, seed int64) error {
	return extract.SimulationCrossCheck(n, ext, trials, seed)
}

// RewriteForward computes every output's ANF by forward abstraction — the
// naive baseline that materializes an expression for every internal gate.
// It agrees with Rewrite bit-for-bit but its working set is the sum of all
// intermediate expressions; provided for comparison and for callers that
// want expressions of internal nodes.
func RewriteForward(n *Netlist) (*RewriteResult, error) { return rewrite.Forward(n) }

// TraceRewrite rewrites one output (by port name) while logging every
// Algorithm 1 iteration to w in the style of the paper's Figure 3.
// Intended for small designs.
func TraceRewrite(n *Netlist, outputName string, w io.Writer) (rewrite.BitResult, error) {
	names := n.OutputNames()
	outs := n.Outputs()
	for i, nm := range names {
		if nm == outputName {
			return rewrite.TraceOutput(n, outs[i], w)
		}
	}
	return rewrite.BitResult{}, fmt.Errorf("gfre: no output named %q", outputName)
}

// FormatExpr renders an ANF polynomial with the netlist's signal names.
func FormatExpr(p ANFPoly, n *Netlist) string { return rewrite.FormatPoly(p, n) }

// ANFPoly is a multivariate polynomial over GF(2) in algebraic normal form.
type ANFPoly = anf.Poly

// VerifyAgainst checks a netlist against a KNOWN irreducible polynomial —
// the classical GF(2^m) verification problem where P(x) is given.
func VerifyAgainst(n *Netlist, p Poly, opts Options) (*Extraction, error) {
	return extract.VerifyAgainst(n, p, opts)
}

// MapAOI fuses inverted AND-OR/OR-AND trees into AOI21/AOI22/OAI21/OAI22
// complex cells (function-preserving; sharing-aware).
func MapAOI(n *Netlist) (*Netlist, error) { return opt.MapAOI(n) }

// Scramble rebuilds n with inputs and outputs shuffled and renamed to
// meaningless sig_###/port_### identifiers — the obfuscated third-party-IP
// adversary ExtractInferred is built for. Deterministic in (n, seed).
func Scramble(n *Netlist, seed int64) (*Netlist, error) { return diffcheck.Scramble(n, seed) }

// FlipXor returns a copy of n with its k-th XOR gate replaced by OR — the
// single-gate trojan used to exercise verification failure paths.
func FlipXor(n *Netlist, k int) (*Netlist, error) { return diffcheck.FlipXor(n, k) }

// RandomIrreducible samples a uniformly random irreducible polynomial of
// degree m by rejection, for randomized differential testing.
func RandomIrreducible(r *rand.Rand, m int) (Poly, error) { return gf2poly.RandomIrreducible(r, m) }

// Report renders a human-readable analysis of an extraction (polynomial
// class, standard-catalog matches, primitivity, rewriting cost).
func Report(n *Netlist, ext *Extraction) string { return extract.Report(n, ext) }
