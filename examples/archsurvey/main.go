// Archsurvey reproduces the paper's Section II-D motivation: for a fixed
// field size, the choice of irreducible polynomial decides the XOR cost of
// the multiplier's field reduction — and therefore circuit area and speed.
// It prints the reduction cost model and actual generated gate counts for
// the Figure 1 example (GF(2^4)) and for the architecture-optimal GF(2^233)
// polynomials of Table IV.
//
//	go run ./examples/archsurvey
package main

import (
	"fmt"
	"log"

	gfre "github.com/galoisfield/gfre"
)

func survey(label string, m int, p gfre.Poly) {
	n, err := gfre.NewMastrovito(m, p)
	if err != nil {
		log.Fatal(err)
	}
	st := n.Stats()
	fmt.Printf("  %-18s %-34v weight %d   reduction XORs %4d   total gates: %d AND + %d XOR\n",
		label, p, p.Weight(), gfre.ReductionXORCount(p),
		st.ByType[gfre.And], st.ByType[gfre.Xor])
}

func main() {
	fmt.Println("Figure 1 / Section II-D: two constructions of GF(2^4)")
	survey("P1", 4, gfre.MustParsePoly("x^4+x^3+1"))
	survey("P2", 4, gfre.MustParsePoly("x^4+x+1"))
	fmt.Println("  → the paper counts 9 reduction XORs for P1 and 6 for P2; P2 wins.")
	fmt.Println()

	fmt.Println("Table IV polynomials: GF(2^233) across microprocessor architectures")
	for _, ap := range gfre.Arch233Polynomials() {
		survey(ap.Arch, 233, ap.P)
	}
	fmt.Println("  → trinomials (ARM, NIST) need far fewer reduction XORs than")
	fmt.Println("    pentanomials (Pentium, MSP430); [Scott 2007] shows the best")
	fmt.Println("    choice still depends on the word size and shift costs of the")
	fmt.Println("    target CPU — which is why many P(x) coexist in the wild, and")
	fmt.Println("    why reverse engineering them from netlists matters.")
}
