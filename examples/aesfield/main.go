// AES field identification: a batch of anonymous GF(2^8) multiplier blocks
// is pulled out of different crypto datapaths. Exactly one of them computes
// in the Rijndael field GF(2^8)/(x^8+x^4+x^3+x+1); identify it by reverse
// engineering each block's irreducible polynomial, then prove the
// identification by regenerating the AES S-box from the recovered field and
// checking it against FIPS-197 test vectors.
//
//	go run ./examples/aesfield
package main

import (
	"fmt"
	"log"

	gfre "github.com/galoisfield/gfre"
)

// sboxVectors holds known S-box values from FIPS-197: S(0x00)=0x63,
// S(0x01)=0x7c, S(0x53)=0xed, S(0xff)=0x16.
var sboxVectors = map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}

// aesSBox computes the Rijndael S-box entry for v over the given field:
// multiplicative inverse (0 ↦ 0) followed by the bitwise affine transform
// b_i ← b_i ⊕ b_{i+4} ⊕ b_{i+5} ⊕ b_{i+6} ⊕ b_{i+7} ⊕ c_i with c = 0x63.
func aesSBox(f *gfre.Field, v byte) (byte, error) {
	x := polyFromByte(v)
	if !x.IsZero() {
		inv, err := f.Inv(x)
		if err != nil {
			return 0, err
		}
		x = inv
	}
	var inv byte
	for i := 0; i < 8; i++ {
		if x.Coeff(i) == 1 {
			inv |= 1 << uint(i)
		}
	}
	var out byte
	for i := uint(0); i < 8; i++ {
		bit := inv >> i & 1
		bit ^= inv >> ((i + 4) % 8) & 1
		bit ^= inv >> ((i + 5) % 8) & 1
		bit ^= inv >> ((i + 6) % 8) & 1
		bit ^= inv >> ((i + 7) % 8) & 1
		bit ^= 0x63 >> i & 1
		out |= (bit & 1) << i
	}
	return out, nil
}

func polyFromByte(v byte) gfre.Poly {
	var terms []int
	for i := 0; i < 8; i++ {
		if v>>uint(i)&1 == 1 {
			terms = append(terms, i)
		}
	}
	if len(terms) == 0 {
		return gfre.MustParsePoly("0")
	}
	p := gfre.MustParsePoly("0")
	for _, t := range terms {
		p = p.Add(gfre.MustParsePoly(fmt.Sprintf("x^%d", t)))
	}
	return p
}

func main() {
	rijndael := gfre.MustParsePoly("x^8+x^4+x^3+x+1")
	candidates := []struct {
		name string
		p    gfre.Poly
	}{
		{"block-A", gfre.MustParsePoly("x^8+x^4+x^3+x^2+1")}, // a different octic
		{"block-B", rijndael},                                // the AES field
		{"block-C", gfre.MustParsePoly("x^8+x^5+x^3+x+1")},   // another octic
	}

	fmt.Println("reverse engineering 3 anonymous GF(2^8) multiplier blocks…")
	var aesField *gfre.Field
	for _, c := range candidates {
		// The blocks arrive as flattened netlists of different architectures.
		var n *gfre.Netlist
		var err error
		switch c.name {
		case "block-A":
			n, err = gfre.NewMontgomery(8, c.p)
		case "block-B":
			n, err = gfre.NewKaratsuba(8, c.p)
		default:
			n, err = gfre.NewMastrovito(8, c.p)
		}
		if err != nil {
			log.Fatal(err)
		}
		ext, err := gfre.Extract(n, gfre.Options{Threads: 8})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "not the AES field"
		if ext.P.Equal(rijndael) {
			verdict = "RIJNDAEL FIELD — this is the AES datapath"
			aesField, err = gfre.NewField(ext.P)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %-8s P(x) = %-22v → %s\n", c.name, ext.P, verdict)
	}
	if aesField == nil {
		log.Fatal("no AES field found")
	}

	fmt.Println("\nregenerating the S-box from the recovered field:")
	for _, in := range []byte{0x00, 0x01, 0x53, 0xff} {
		got, err := aesSBox(aesField, in)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if got != sboxVectors[in] {
			status = fmt.Sprintf("MISMATCH (want %#02x)", sboxVectors[in])
		}
		fmt.Printf("  S(%#02x) = %#02x  %s\n", in, got, status)
	}
}
