// Trojanscan audits a batch of third-party GF(2^m) multiplier IP blocks:
// for each netlist it recovers the irreducible polynomial and formally
// verifies the implementation against the golden multiplier built from the
// recovered P(x). Designs whose function deviates — a single flipped gate
// is enough — are flagged as tampered.
//
// The scenario mirrors the paper's motivation: GF multipliers sit inside
// AES/ECC datapaths, arrive as flattened gate-level IP, and the integrator
// has no documentation of which P(x) (or architecture) was used.
//
//	go run ./examples/trojanscan
package main

import (
	"errors"
	"fmt"
	"log"

	gfre "github.com/galoisfield/gfre"
)

// flipOneXor rebuilds n with its k-th XOR gate replaced by OR — functionally
// a one-gate hardware trojan that biases a single output column while
// leaving the netlist structurally inconspicuous.
func flipOneXor(n *gfre.Netlist, k int) (*gfre.Netlist, error) {
	out := gfre.NewNetlist(n.Name + "_trojan")
	mapping := make([]int, n.NumGates())
	seen := 0
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		switch {
		case g.Type == gfre.Input:
			nid, err = out.AddInput(n.NameOf(id))
		case g.Type == gfre.Lut:
			nid, err = out.AddLut(g.Table, fanin...)
		case g.Type == gfre.Xor:
			ty := gfre.Xor
			if seen == k {
				ty = gfre.Or
			}
			seen++
			nid, err = out.AddGate(ty, fanin...)
		default:
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func main() {
	p163, _ := gfre.NISTPolynomial(163)
	p64, _ := gfre.NISTPolynomial(64)

	type vendor struct {
		name  string
		build func() (*gfre.Netlist, error)
	}
	vendors := []vendor{
		{"acme-mastrovito-64", func() (*gfre.Netlist, error) {
			return gfre.NewMastrovito(64, p64)
		}},
		{"globex-montgomery-64", func() (*gfre.Netlist, error) {
			return gfre.NewMontgomery(64, p64)
		}},
		{"initech-synth-163", func() (*gfre.Netlist, error) {
			n, err := gfre.NewMastrovitoMatrix(163, p163)
			if err != nil {
				return nil, err
			}
			return gfre.Synthesize(n)
		}},
		{"shady-trojaned-64", func() (*gfre.Netlist, error) {
			n, err := gfre.NewMastrovito(64, p64)
			if err != nil {
				return nil, err
			}
			return flipOneXor(n, 150)
		}},
	}

	fmt.Println("auditing 4 third-party GF(2^m) multiplier IP blocks…")
	for _, v := range vendors {
		n, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		ext, err := gfre.Extract(n, gfre.Options{Threads: 16})
		switch {
		case err == nil:
			fmt.Printf("  %-22s CLEAN    P(x) = %v (verified)\n", v.name, ext.P)
		case errors.Is(err, gfre.ErrMismatch):
			fmt.Printf("  %-22s TAMPERED function deviates from GF(2^%d) multiplication mod %v\n",
				v.name, ext.M, ext.P)
		case errors.Is(err, gfre.ErrNotIrreducible), errors.Is(err, gfre.ErrNotMultiplier):
			fmt.Printf("  %-22s SUSPECT  %v\n", v.name, err)
		default:
			log.Fatalf("%s: %v", v.name, err)
		}
	}
}
