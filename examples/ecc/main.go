// ECC rebuild: recover the field polynomial from an undocumented GF(2^163)
// multiplier netlist, then reconstruct the elliptic-curve cryptosystem the
// hardware implements and run an ECDH key agreement on top of it.
//
// This is the paper's application story end to end: ECC hardware uses
// GF(2^m) multipliers whose irreducible polynomial is an implementation
// secret of the netlist; once P(x) is reverse engineered, the entire
// arithmetic stack above it can be replicated in software.
//
//	go run ./examples/ecc
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	gfre "github.com/galoisfield/gfre"
	"github.com/galoisfield/gfre/internal/ecc"
	"github.com/galoisfield/gfre/internal/gf2m"
	"github.com/galoisfield/gfre/internal/gf2poly"
)

func main() {
	// ── The hardware ─────────────────────────────────────────────────────
	// An ECC accelerator's field multiplier arrives as a flat netlist. The
	// designer happened to use the ARM-optimal trinomial for GF(2^163)'s
	// sibling — here, the NIST K-163 polynomial — but the analyst doesn't
	// know that.
	secret := gfre.MustParsePoly("x^163+x^7+x^6+x^3+1")
	mult, err := gfre.NewMastrovito(163, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplier netlist: %d equations, %d outputs\n",
		mult.NumEquations(), len(mult.Outputs()))

	// ── Step 1: reverse engineer P(x) ────────────────────────────────────
	start := time.Now()
	ext, err := gfre.Extract(mult, gfre.Options{Threads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered P(x) = %v in %v (verified=%v)\n",
		ext.P, time.Since(start).Round(time.Millisecond), ext.Verified)

	// ── Step 2: rebuild the field and a Koblitz curve over it ────────────
	field, err := gf2m.New(ext.P)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := ecc.NewCurve(field, gf2poly.One(), gf2poly.One()) // y²+xy = x³+x²+1
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(163))
	g, err := curve.RandomPoint(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curve y²+xy = x³+x²+1 over GF(2^%d); base point found (on curve: %v)\n",
		field.M(), curve.IsOnCurve(g))

	// ── Step 3: ECDH key agreement over the reconstructed curve ─────────
	alice, _ := new(big.Int).SetString("68764982379137563824691236719287412387461234791", 10)
	bob, _ := new(big.Int).SetString("91827312469812367518623401982374612783492374611", 10)
	qa := curve.ScalarMul(alice, g) // Alice's public key
	qb := curve.ScalarMul(bob, g)   // Bob's public key
	sharedA := curve.ScalarMul(alice, qb)
	sharedB := curve.ScalarMul(bob, qa)
	fmt.Printf("ECDH: shared secrets agree: %v\n", sharedA.Equal(sharedB))
	fmt.Printf("      shared x-coordinate has degree %d (of < %d)\n",
		sharedA.X.Deg(), field.M())
}
