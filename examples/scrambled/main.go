// Scrambled: reverse engineer a multiplier whose port names and orders have
// been deliberately anonymized — the realistic "obfuscated third-party IP"
// scenario. The paper assumes canonical a/b/z port names; this example uses
// the library's port-inference extension, which recovers the operand
// partition, the bit order within each operand, and the numeric output
// order purely from the algebraic structure of the output expressions
// (a_i·b_j products live in the partial sum s_{i+j}, and the reduction
// pattern of out-field sums pins down every index).
//
//	go run ./examples/scrambled
package main

import (
	"fmt"
	"log"
	"math/rand"

	gfre "github.com/galoisfield/gfre"
)

// anonymize rebuilds n with inputs shuffled and renamed sig_###, outputs
// shuffled and renamed port_### — destroying every naming hint.
func anonymize(n *gfre.Netlist, seed int64) (*gfre.Netlist, error) {
	r := rand.New(rand.NewSource(seed))
	ins := n.Inputs()
	perm := r.Perm(len(ins))
	out := gfre.NewNetlist(n.Name + "_anon")
	mapping := make([]int, n.NumGates())
	for newPos, oldPos := range perm {
		id, err := out.AddInput(fmt.Sprintf("sig_%03d", newPos))
		if err != nil {
			return nil, err
		}
		mapping[ins[oldPos]] = id
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == gfre.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		if g.Type == gfre.Lut {
			nid, err = out.AddLut(g.Table, fanin...)
		} else {
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			return nil, err
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	operm := r.Perm(len(outs))
	for newPos, oldPos := range operm {
		if err := out.MarkOutput(fmt.Sprintf("port_%03d", newPos), mapping[outs[oldPos]]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func main() {
	secret := gfre.MustParsePoly("x^32+x^7+x^3+x^2+1")
	clean, err := gfre.NewMastrovitoMatrix(32, secret)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := anonymize(clean, 0xC0FFEE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized netlist: %d equations; inputs %s…, outputs %s…\n",
		anon.NumEquations(), anon.NameOf(anon.Inputs()[0]), anon.OutputNames()[0])

	// Plain extraction would mispair the operand bits — run with inference.
	ext, ports, err := gfre.ExtractInferred(anon, gfre.Options{Threads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered P(x) = %v (verified: %v)\n", ext.P, ext.Verified)
	fmt.Printf("matches secret: %v\n", ext.P.Equal(secret))
	fmt.Printf("inferred operand A bits (LSB→MSB): ")
	for _, id := range ports.A[:6] {
		fmt.Printf("%s ", anon.NameOf(id))
	}
	fmt.Printf("…\ninferred output z0..z5:            ")
	names := anon.OutputNames()
	for _, pos := range ports.OutputOrder[:6] {
		fmt.Printf("%s ", names[pos])
	}
	fmt.Println("…")
}
