// Scrambled: reverse engineer a multiplier whose port names and orders have
// been deliberately anonymized — the realistic "obfuscated third-party IP"
// scenario. The paper assumes canonical a/b/z port names; this example uses
// the library's port-inference extension, which recovers the operand
// partition, the bit order within each operand, and the numeric output
// order purely from the algebraic structure of the output expressions
// (a_i·b_j products live in the partial sum s_{i+j}, and the reduction
// pattern of out-field sums pins down every index).
//
//	go run ./examples/scrambled
package main

import (
	"fmt"
	"log"

	gfre "github.com/galoisfield/gfre"
)

func main() {
	secret := gfre.MustParsePoly("x^32+x^7+x^3+x^2+1")
	clean, err := gfre.NewMastrovitoMatrix(32, secret)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := gfre.Scramble(clean, 0xC0FFEE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized netlist: %d equations; inputs %s…, outputs %s…\n",
		anon.NumEquations(), anon.NameOf(anon.Inputs()[0]), anon.OutputNames()[0])

	// Plain extraction would mispair the operand bits — run with inference.
	ext, ports, err := gfre.ExtractInferred(anon, gfre.Options{Threads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered P(x) = %v (verified: %v)\n", ext.P, ext.Verified)
	fmt.Printf("matches secret: %v\n", ext.P.Equal(secret))
	fmt.Printf("inferred operand A bits (LSB→MSB): ")
	for _, id := range ports.A[:6] {
		fmt.Printf("%s ", anon.NameOf(id))
	}
	fmt.Printf("…\ninferred output z0..z5:            ")
	names := anon.OutputNames()
	for _, pos := range ports.OutputOrder[:6] {
		fmt.Printf("%s ", names[pos])
	}
	fmt.Println("…")
}
