// Quickstart: generate a GF(2^m) multiplier, pretend we know nothing about
// it, and reverse engineer its irreducible polynomial.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	gfre "github.com/galoisfield/gfre"
)

func main() {
	// A vendor ships a 32-bit GF multiplier netlist. Internally they used
	// this pentanomial — but the analyst below never sees it.
	secret := gfre.MustParsePoly("x^32+x^7+x^3+x^2+1")
	netlist, err := gfre.NewMontgomery(32, secret)
	if err != nil {
		log.Fatal(err)
	}
	stats := netlist.Stats()
	fmt.Printf("received netlist: %d inputs, %d outputs, %d gate equations, depth %d\n",
		stats.Inputs, stats.Outputs, stats.Equations, stats.Depth)

	// Reverse engineer: backward-rewrite every output bit in parallel, find
	// the out-field product set, reconstruct P(x), verify against a golden
	// GF(2^m) multiplier built from the recovered polynomial.
	start := time.Now()
	ext, err := gfre.Extract(netlist, gfre.Options{Threads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered:        P(x) = %v  (in %v)\n", ext.P, time.Since(start).Round(time.Millisecond))
	fmt.Printf("verified:         %v (netlist ≡ A·B mod P for all inputs)\n", ext.Verified)
	fmt.Printf("matches secret:   %v\n", ext.P.Equal(secret))

	// With P(x) in hand, the analyst can re-implement the vendor's field.
	field, err := gfre.NewField(ext.P)
	if err != nil {
		log.Fatal(err)
	}
	a := gfre.MustParsePoly("x^5+x^2+1")
	b := gfre.MustParsePoly("x^31+x")
	fmt.Printf("software field:   (%v)·(%v) = %v\n", a, b, field.Mul(a, b))
}
