package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtures resolves a path under the repo-level testdata directory.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "testdata"}, parts...)...)
}

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCyclicFixtureFlagged(t *testing.T) {
	code, out, _ := runLint(t, fixture("lint", "cyclic8.eqn"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	// Actionable witness: the cycle members, joined as a path.
	for _, want := range []string{"cycle", "u", "v", "w", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiDrivenFixtureFlagged(t *testing.T) {
	code, out, _ := runLint(t, fixture("lint", "multidriven8.eqn"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "multi-driven") || !strings.Contains(out, `"s"`) ||
		!strings.Contains(out, "lines 8 and 10") {
		t.Errorf("witness not actionable:\n%s", out)
	}
}

func TestDeadGateFixtureFlagged(t *testing.T) {
	code, out, _ := runLint(t, fixture("lint", "deadgate8.eqn"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (dead gates warn, not error)\n%s", code, out)
	}
	for _, want := range []string{"dead-gate", "dead1", "dead2", "unused-input", "b3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// -strict escalates the warnings to a failing exit.
	code, _, _ = runLint(t, "-strict", fixture("lint", "deadgate8.eqn"))
	if code != 1 {
		t.Errorf("-strict exit = %d, want 1", code)
	}
}

func TestLockedFixturesFlagged(t *testing.T) {
	for _, fx := range []string{"keyxor8.eqn", "keyopaque8.eqn"} {
		code, out, _ := runLint(t, "-multiplier", fixture("lint", fx))
		if code != 0 {
			t.Fatalf("%s: exit = %d, want 0 (locks warn, not error)\n%s", fx, code, out)
		}
		if !strings.Contains(out, "key-gate") || !strings.Contains(out, "k0") {
			t.Errorf("%s: key-gate warning missing:\n%s", fx, out)
		}
		// -strict is the submission gate: locked designs must not pass it.
		if code, _, _ := runLint(t, "-strict", "-multiplier", fixture("lint", fx)); code != 1 {
			t.Errorf("%s: -strict exit = %d, want 1", fx, code)
		}
	}
	// The opaque lock additionally plants an AND tree over key bits.
	_, out, _ := runLint(t, "-multiplier", fixture("lint", "keyopaque8.eqn"))
	if !strings.Contains(out, "opaque-constant") {
		t.Errorf("opaque fixture missing opaque-constant warning:\n%s", out)
	}
}

func TestCleanDesignsZeroErrors(t *testing.T) {
	clean := []string{
		fixture("mastrovito16.eqn"),
		fixture("montgomery12.blif"),
		fixture("karatsuba16_syn.v"),
		fixture("scrambled16.eqn"),
		fixture("digitserial8_mapped.eqn"),
		fixture("trojan8.eqn"),
	}
	code, out, errOut := runLint(t, clean...)
	if code != 0 {
		t.Fatalf("clean designs exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, "-json", "-multiplier", fixture("mastrovito16.eqn"))
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	var reports []struct {
		Design      string `json:"design"`
		Fingerprint struct {
			Class string `json:"class"`
		} `json:"fingerprint"`
		SuggestedBudgetTerms int `json:"suggested_budget_terms"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].Fingerprint.Class != "mastrovito" || reports[0].SuggestedBudgetTerms <= 0 {
		t.Errorf("report = %+v", reports)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, out, _ := runLint(t, "-sarif",
		fixture("lint", "cyclic8.eqn"), fixture("lint", "deadgate8.eqn"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (cyclic fixture has errors)", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("bad SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("SARIF shape = %+v", log)
	}
	hasError := false
	for _, r := range log.Runs[0].Results {
		if r.Level == "error" && r.RuleID == "cycle" {
			hasError = true
		}
	}
	if !hasError {
		t.Errorf("SARIF missing the cycle error: %+v", log.Runs[0].Results)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "does-not-exist.eqn"); code != 2 {
		t.Errorf("missing-file exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-json", "-sarif", "x.eqn"); code != 2 {
		t.Errorf("conflicting renderers exit = %d, want 2", code)
	}
}

func TestRulesListing(t *testing.T) {
	code, out, _ := runLint(t, "-rules")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, rule := range []string{"cycle", "multi-driven", "undriven", "dead-gate", "fingerprint", "cone-cost"} {
		if !strings.Contains(out, rule) {
			t.Errorf("rule listing missing %q:\n%s", rule, out)
		}
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json rendering byte-for-byte against a committed
// golden file. The one nondeterministic field (the semantic sweep's wall
// time) is normalized before comparison; everything else — findings, degree
// bounds, content hash, governor suggestions — must be reproducible from
// the source bytes alone.
func TestJSONGolden(t *testing.T) {
	code, out, _ := runLint(t, "-json", "-multiplier", fixture("trojan8.eqn"))
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	norm := regexp.MustCompile(`"analysis_micros": \d+`).
		ReplaceAllString(out, `"analysis_micros": 0`)

	golden := fixture("golden", "trojan8.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if norm != string(want) {
		t.Errorf("JSON output drifted from golden (run with -update if intended)\ngot:\n%s", norm)
	}

	// The golden must carry the semantic layer's verdict on the trojan:
	// a nonlinear-cone warning and the algebra digest.
	for _, needle := range []string{`"nonlinear-cone"`, `"algebra"`, `"content_hash"`, `"deg_tot"`} {
		if !strings.Contains(norm, needle) {
			t.Errorf("JSON report missing %s", needle)
		}
	}
}
