// Command gflint statically analyzes gate-level netlists before they reach
// the extraction pipeline: combinational cycles (with a witness path),
// multi-driven and undriven signals, dead logic, multiplier I/O shape and
// naming conventions, architecture fingerprinting, and a per-output
// cone-cost prediction that sizes the rewriting governor's budget and
// deadline.
//
// Usage:
//
//	gflint design.eqn                  # human-readable report
//	gflint -json a.eqn b.blif          # machine-readable report array
//	gflint -sarif testdata/*.eqn       # SARIF 2.1.0 for code-scanning UIs
//	gflint -multiplier design.eqn      # require GF(2^m) multiplier shape
//	gflint -strict design.eqn          # warnings also fail the run
//	gflint -rules                      # list the rule registry
//
// Exit status: 0 when every file is clean, 1 when any error-level finding
// exists (with -strict, warnings count too), 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/galoisfield/gfre/internal/netlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit a JSON array of reports")
		sarifOut   = fs.Bool("sarif", false, "emit a SARIF 2.1.0 log")
		format     = fs.String("format", "", "netlist format: eqn, blif or verilog (default: by extension/content)")
		multiplier = fs.Bool("multiplier", false, "require GF(2^m) multiplier I/O shape (escalates io-shape to error)")
		strict     = fs.Bool("strict", false, "treat warnings as failures for the exit status")
		disable    = fs.String("disable", "", "comma-separated rule names to skip")
		listRules  = fs.Bool("rules", false, "list registered rules and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gflint [flags] netlist...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range netlint.Rules() {
			kind := "dag"
			if r.Source {
				kind = "source"
			}
			fmt.Fprintf(stdout, "%-14s %-6s %-5s %s\n", r.Name, kind, r.Default, r.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "gflint: -json and -sarif are mutually exclusive")
		return 2
	}
	opts := netlint.Options{RequireMultiplier: *multiplier}
	if *disable != "" {
		for _, name := range strings.Split(*disable, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Disabled = append(opts.Disabled, name)
			}
		}
	}

	var reports []*netlint.Report
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "gflint: %v\n", err)
			return 2
		}
		reports = append(reports, netlint.AnalyzeSource(data, path, *format, opts))
	}

	switch {
	case *sarifOut:
		if err := netlint.WriteSARIF(stdout, reports...); err != nil {
			fmt.Fprintf(stderr, "gflint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "gflint: %v\n", err)
			return 2
		}
	default:
		for _, rep := range reports {
			rep.WriteText(stdout)
		}
	}

	for _, rep := range reports {
		if rep.HasErrors() {
			return 1
		}
		if *strict && rep.MaxSeverity() == netlint.SevWarn {
			return 1
		}
	}
	return 0
}
