package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/server"
)

// gfredArgSep separates daemon arguments inside the helper env var (NUL is
// not legal in environment values).
const gfredArgSep = "\x1f"

// TestGfredHelper is not a test: re-executed as the gfred daemon by the
// lifecycle test below so it can be signalled and killed like a real process.
func TestGfredHelper(t *testing.T) {
	if os.Getenv("GFRED_HELPER") != "1" {
		t.Skip("helper process for the lifecycle test")
	}
	args := strings.Split(os.Getenv("GFRED_ARGS"), gfredArgSep)
	if err := run(args, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfred:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon re-execs the test binary as gfred on an ephemeral port and
// returns the base URL parsed from its startup banner. extra appends
// daemon flags (e.g. -peers, -lease-ttl) to the default set.
func startDaemon(t *testing.T, spool string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "localhost:0", "-spool", spool, "-drain-grace", "10s",
	}, extra...)
	cmd := exec.Command(os.Args[0], "-test.run=TestGfredHelper$")
	cmd.Env = append(os.Environ(),
		"GFRED_HELPER=1",
		"GFRED_ARGS="+strings.Join(args, gfredArgSep),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The banner carries the resolved ephemeral address:
	// "gfred: serving on http://127.0.0.1:PORT (...)"
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			baseURL = strings.Fields(line[i:])[0]
			break
		}
	}
	if baseURL == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no serving banner from gfred (scan err %v)", sc.Err())
	}
	// Keep draining stderr so the daemon never blocks on a full pipe.
	go io.Copy(io.Discard, stderr) //nolint:errcheck
	return cmd, baseURL
}

func postNetlist(t *testing.T, baseURL, text string) *server.JobState {
	t.Helper()
	resp, err := http.Post(baseURL+"/jobs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	st := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, baseURL, id string) *server.JobState {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %s", id, resp.Status)
	}
	st := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGfredLifecycle is the daemon smoke: start, submit over HTTP, extract,
// drain on SIGTERM with exit 0, and keep the finished job visible to the
// next daemon start via the spool.
func TestGfredLifecycle(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(t.TempDir(), "spool")
	cmd, baseURL := startDaemon(t, spool)
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	resp, err := http.Get(baseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %s", resp.Status)
	}

	st := postNetlist(t, baseURL, buf.String())
	deadline := time.Now().Add(30 * time.Second)
	for !st.Status.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		st = getJob(t, baseURL, st.ID)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", st.Status, st.Error)
	}
	if st.Result == nil || st.Result.Polynomial != p.String() {
		t.Fatalf("result: %+v", st.Result)
	}

	// SIGTERM drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gfred exited uncleanly after SIGTERM: %v", err)
	}

	// The spool outlives the daemon: a restarted instance still serves the
	// finished job's state and result.
	cmd2, baseURL2 := startDaemon(t, spool)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		cmd2.Wait()                          //nolint:errcheck
	}()
	again := getJob(t, baseURL2, st.ID)
	if again.Status != server.StatusDone || again.Result == nil || again.Result.Polynomial != p.String() {
		t.Fatalf("restarted daemon lost the job: %+v", again)
	}
}

// postJSON submits a JSON body with extra headers and returns the response;
// the caller closes the body.
func postJSON(t *testing.T, url string, body any, hdr map[string]string) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// awaitDone polls a job until it completes with the expected polynomial.
func awaitDone(t *testing.T, baseURL, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	st := getJob(t, baseURL, id)
	for !st.Status.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		st = getJob(t, baseURL, id)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("job %s ended %s: %s", id, st.Status, st.Error)
	}
	if st.Result == nil || st.Result.Polynomial != want {
		t.Fatalf("job %s result: %+v", id, st.Result)
	}
}

// TestGfredTenantQuotasAndBatch exercises the multi-tenant surface of a live
// daemon started with a -tenants policy file: per-tenant quota rejection with
// Retry-After, tenant isolation (one tenant at quota does not slow another),
// API-key authentication, the /tenants admission report, and batch submission
// with forced content-hash dedup.
func TestGfredTenantQuotasAndBatch(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}
	eqn := buf.String()

	policyPath := filepath.Join(t.TempDir(), "tenants.json")
	policy := `{"tenants": {"alice": {"max_active": 1}}, "api_keys": {"s3kr1t": "carol"}}`
	if err := os.WriteFile(policyPath, []byte(policy), 0o644); err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(t.TempDir(), "spool")
	// -retry-base 60s keeps a failed job parked (non-terminal, thus active)
	// for the whole test, so alice's quota state is deterministic.
	cmd, baseURL := startDaemon(t, spool,
		"-tenants", policyPath, "-retry-base", "60s", "-retry-cap", "60s")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		cmd.Wait()                          //nolint:errcheck
	}()

	// Pin alice's single active slot: a budget-starved job fails its first
	// attempt almost immediately and parks in a one-minute backoff, staying
	// non-terminal without occupying the worker.
	starved := map[string]any{"netlist": eqn, "budget_terms": 1, "max_attempts": 3}
	resp := postJSON(t, baseURL+"/jobs", starved, map[string]string{"X-Tenant": "alice"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's first submit: %s", resp.Status)
	}

	// Her second submission must bounce off max_active=1 with a retry hint.
	resp = postJSON(t, baseURL+"/jobs", starved, map[string]string{"X-Tenant": "alice"})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: got %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Bob has no quota entry and is not affected by alice's saturation.
	resp = postJSON(t, baseURL+"/jobs", map[string]any{"netlist": eqn},
		map[string]string{"X-Tenant": "bob"})
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("bob's submit: %s", resp.Status)
	}
	bobSt := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(bobSt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bobSt.Tenant != "bob" {
		t.Fatalf("bob's job attributed to %q", bobSt.Tenant)
	}
	awaitDone(t, baseURL, bobSt.ID, p.String())

	// An API key resolves to its tenant; an unknown key is refused outright.
	resp = postJSON(t, baseURL+"/jobs", map[string]any{"netlist": eqn},
		map[string]string{"Authorization": "Bearer s3kr1t"})
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("carol's keyed submit: %s", resp.Status)
	}
	carolSt := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(carolSt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if carolSt.Tenant != "carol" {
		t.Fatalf("API key resolved to tenant %q, want carol", carolSt.Tenant)
	}
	resp = postJSON(t, baseURL+"/jobs", map[string]any{"netlist": eqn},
		map[string]string{"Authorization": "Bearer wrong"})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown API key: got %s, want 401", resp.Status)
	}

	// The admission report shows alice saturated and rejected.
	resp, err = http.Get(baseURL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tenants []server.TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&tenants); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := map[string]server.TenantStatus{}
	for _, ts := range tenants {
		byName[ts.Tenant] = ts
	}
	if a := byName["alice"]; a.Active != 1 || a.Rejected < 1 {
		t.Fatalf("alice's admission state: %+v", a)
	}
	if b := byName["bob"]; b.Admitted < 1 {
		t.Fatalf("bob's admission state: %+v", b)
	}

	// A batch of identical specs dedups onto one leader: the followers carry
	// DedupOf and every job still reports the planted polynomial.
	batch := []map[string]any{
		{"netlist": eqn, "tolerate": 1},
		{"netlist": eqn, "tolerate": 1},
		{"netlist": eqn, "tolerate": 1},
	}
	resp = postJSON(t, baseURL+"/jobs/batch", batch, map[string]string{"X-Tenant": "bob"})
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("batch submit: %s", resp.Status)
	}
	var reply struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
		Items    []struct {
			Job *server.JobState `json:"job"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply.Accepted != 3 || reply.Rejected != 0 {
		t.Fatalf("batch reply: accepted %d rejected %d", reply.Accepted, reply.Rejected)
	}
	followers := 0
	for _, item := range reply.Items {
		if item.Job == nil {
			t.Fatalf("accepted batch item without job state: %+v", reply)
		}
		if item.Job.DedupOf != "" {
			followers++
		}
	}
	if followers != 2 {
		t.Fatalf("batch of 3 identical specs produced %d followers, want 2", followers)
	}
	for _, item := range reply.Items {
		awaitDone(t, baseURL, item.Job.ID, p.String())
	}
}
