package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/server"
)

// gfredArgSep separates daemon arguments inside the helper env var (NUL is
// not legal in environment values).
const gfredArgSep = "\x1f"

// TestGfredHelper is not a test: re-executed as the gfred daemon by the
// lifecycle test below so it can be signalled and killed like a real process.
func TestGfredHelper(t *testing.T) {
	if os.Getenv("GFRED_HELPER") != "1" {
		t.Skip("helper process for the lifecycle test")
	}
	args := strings.Split(os.Getenv("GFRED_ARGS"), gfredArgSep)
	if err := run(args, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfred:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon re-execs the test binary as gfred on an ephemeral port and
// returns the base URL parsed from its startup banner. extra appends
// daemon flags (e.g. -peers, -lease-ttl) to the default set.
func startDaemon(t *testing.T, spool string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "localhost:0", "-spool", spool, "-drain-grace", "10s",
	}, extra...)
	cmd := exec.Command(os.Args[0], "-test.run=TestGfredHelper$")
	cmd.Env = append(os.Environ(),
		"GFRED_HELPER=1",
		"GFRED_ARGS="+strings.Join(args, gfredArgSep),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The banner carries the resolved ephemeral address:
	// "gfred: serving on http://127.0.0.1:PORT (...)"
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			baseURL = strings.Fields(line[i:])[0]
			break
		}
	}
	if baseURL == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no serving banner from gfred (scan err %v)", sc.Err())
	}
	// Keep draining stderr so the daemon never blocks on a full pipe.
	go io.Copy(io.Discard, stderr) //nolint:errcheck
	return cmd, baseURL
}

func postNetlist(t *testing.T, baseURL, text string) *server.JobState {
	t.Helper()
	resp, err := http.Post(baseURL+"/jobs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	st := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, baseURL, id string) *server.JobState {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %s", id, resp.Status)
	}
	st := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGfredLifecycle is the daemon smoke: start, submit over HTTP, extract,
// drain on SIGTERM with exit 0, and keep the finished job visible to the
// next daemon start via the spool.
func TestGfredLifecycle(t *testing.T) {
	p, err := polytab.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(8, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}

	spool := filepath.Join(t.TempDir(), "spool")
	cmd, baseURL := startDaemon(t, spool)
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	resp, err := http.Get(baseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %s", resp.Status)
	}

	st := postNetlist(t, baseURL, buf.String())
	deadline := time.Now().Add(30 * time.Second)
	for !st.Status.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		st = getJob(t, baseURL, st.ID)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", st.Status, st.Error)
	}
	if st.Result == nil || st.Result.Polynomial != p.String() {
		t.Fatalf("result: %+v", st.Result)
	}

	// SIGTERM drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gfred exited uncleanly after SIGTERM: %v", err)
	}

	// The spool outlives the daemon: a restarted instance still serves the
	// finished job's state and result.
	cmd2, baseURL2 := startDaemon(t, spool)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		cmd2.Wait()                          //nolint:errcheck
	}()
	again := getJob(t, baseURL2, st.ID)
	if again.Status != server.StatusDone || again.Result == nil || again.Result.Polynomial != p.String() {
		t.Fatalf("restarted daemon lost the job: %+v", again)
	}
}
