package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/polytab"
	"github.com/galoisfield/gfre/internal/server"
)

// metricsSnapshot fetches the coordinator's /metrics registry.
func metricsSnapshot(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTwoNodeShardedExtractionSurvivesPeerKill is the distributed recovery
// test: node 1 (the coordinator) runs a sharded job with no local workers,
// so node 2 — a peer daemon leasing cones over HTTP — does all the
// rewriting. The peer is SIGKILLed mid-run; its leases expire, the cones
// re-queue, and a replacement peer finishes the job. The result must be the
// exact P(x), verified, with the expiries visible in the job result.
func TestTwoNodeShardedExtractionSurvivesPeerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process distributed test skipped in -short mode")
	}
	m := 96
	p, err := polytab.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gen.Mastrovito(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteEQN(&buf); err != nil {
		t.Fatal(err)
	}

	// Node 1: coordinator with a short lease TTL so a dead peer's cones
	// re-queue within the test's patience.
	coord, coordURL := startDaemon(t, t.TempDir(), "-lease-ttl", "500ms")
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()

	// Shard: -1 — no local workers; only peers make progress. This removes
	// any race between local completion and the peer's death: the killed
	// peer's work MUST be recovered remotely or the job never finishes.
	spec, _ := json.Marshal(&server.JobSpec{Netlist: buf.String(), Shard: -1})
	resp, err := http.Post(coordURL+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	st := &server.JobState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Node 2: the doomed peer. Wait until it holds live leases, then
	// SIGKILL it — no drain, no heartbeat goodbye.
	victim, _ := startDaemon(t, t.TempDir(), "-peers", coordURL, "-peer-workers", "2")
	killed := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap := metricsSnapshot(t, coordURL)
		if snap.Counters["leases_granted"] >= 2 && snap.Gauges["leases_active"] >= 1 {
			victim.Process.Kill()
			victim.Wait()
			killed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		victim.Process.Kill()
		victim.Wait()
		t.Fatal("peer never took a lease within 60s")
	}

	// Node 2': the replacement. It must pick up the expired leases and
	// finish the job.
	sub, _ := startDaemon(t, t.TempDir(), "-peers", coordURL, "-peer-workers", "2")
	defer func() {
		sub.Process.Kill()
		sub.Wait()
	}()

	var final *server.JobState
	for time.Now().Before(deadline) {
		final = getJob(t, coordURL, st.ID)
		if final.Status.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final == nil || !final.Status.Terminal() {
		t.Fatal("job did not finish after the peer was replaced")
	}
	if final.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if final.Result.Polynomial != p.String() {
		t.Fatalf("recovered %s, want %s", final.Result.Polynomial, p)
	}
	if !final.Result.Verified {
		t.Fatal("distributed extraction skipped verification")
	}
	if final.Result.LeasesExpired < 1 {
		t.Fatalf("LeasesExpired = %d: the victim died holding leases, expiry must have fired",
			final.Result.LeasesExpired)
	}
	t.Logf("GF(2^%d) across 2 nodes: peer killed mid-run, %d leases expired, recovered %s",
		m, final.Result.LeasesExpired, final.Result.Polynomial)
}
