// Command gfred is the gfre extraction service: an HTTP daemon that accepts
// multiplier netlists into a bounded durable job queue, reverse engineers
// their irreducible polynomials under the resource governor, and survives
// both its own restarts and the jobs' crashes.
//
//	gfred -addr :8080 -spool /var/lib/gfred
//
// API:
//
//	POST /jobs             submit (JSON job spec, or raw netlist with ?format=)
//	POST /jobs/batch       submit a JSON array of job specs with content-hash
//	                       dedup forced (identical items share one extraction)
//	GET  /jobs             list jobs
//	GET  /jobs/{id}        job status and result
//	GET  /jobs/{id}/events live job telemetry as SSE (resumable via Last-Event-ID)
//	GET  /events           the whole telemetry journal as SSE
//	GET  /tenants          per-tenant admission state (active, rejected, ...)
//	GET  /debug/live       browser live view (queue, per-job progress, cone heatmap)
//	GET  /healthz          liveness
//	GET  /readyz           readiness as JSON (503 while draining or at the
//	                       load-shed controller's reject-everything stage)
//	GET  /metrics          metrics: JSON by default, Prometheus text format
//	                       with Accept: text/plain or ?format=prometheus
//	POST /shards/lease       lease a batch of cone IDs to a peer (204 = no work)
//	POST /shards/{id}/renew  heartbeat a lease (410 = fenced)
//	POST /shards/{id}/result submit packed cone results (410 = fenced)
//
// Submissions are attributed to tenants (X-Tenant header, or an API key via
// "Authorization: Bearer" resolved through the -tenants policy file); each
// tenant gets token-bucket admission, resource quotas and a weighted-fair
// share of the dispatcher. Over-quota submissions get 429 with a per-tenant
// Retry-After; overload engages staged shedding (lowest priorities first,
// then coordinator-only, then readyz flips) instead of global collapse.
//
// Jobs submitted with "shard" > 0 run under the lease-based sharded
// extractor: their cones are leased to local workers and to any gfred
// peers started with -peers pointing at this node. Worker death, network
// partitions and duplicated submissions are absorbed by lease expiry and
// the epoch fence; see package shard.
//
// Every accepted job is persisted to the spool before the 202 response, so
// a daemon crash loses nothing: on the next start the spool is replayed,
// and jobs that were mid-extraction resume from their checkpoints instead
// of starting over. SIGTERM drains gracefully — intake stops, running jobs
// get a grace period, then are cancelled cooperatively with their
// checkpoints synced. When the queue is full, submissions are shed with
// 429 and a Retry-After hint.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/server"
	"github.com/galoisfield/gfre/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "gfred:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("gfred", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "localhost:8080", "HTTP listen address")
		spool       = fs.String("spool", "gfred-spool", "durable job spool directory (jobs, states, checkpoints)")
		capacity    = fs.Int("capacity", 64, "queue capacity (queued + running); beyond it submissions get 429")
		workers     = fs.Int("workers", 1, "concurrent extractions (each is internally parallel)")
		maxAttempts = fs.Int("max-attempts", 3, "default attempts per job before it fails permanently")
		retryBase   = fs.Duration("retry-base", time.Second, "base retry backoff (doubles per attempt, with jitter)")
		retryCap    = fs.Duration("retry-cap", 2*time.Minute, "retry backoff ceiling")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long SIGTERM lets in-flight jobs finish before cancelling them")
		metrics     = fs.String("metrics", "", "stream telemetry events to this NDJSON file")
		journalCap  = fs.Int("journal", obs.DefaultJournalCapacity, "event journal capacity backing SSE replay (/events, /jobs/{id}/events)")
		peers       = fs.String("peers", "", "comma-separated base URLs of other gfred nodes to execute cone leases for (distributed extraction)")
		peerWorkers = fs.Int("peer-workers", 1, "concurrent lease-executing goroutines per peer URL")
		leaseTTL    = fs.Duration("lease-ttl", 0, "shard lease heartbeat deadline (0 = default); leases not renewed within it re-queue")
		tenants     = fs.String("tenants", "", "tenant admission policy file (JSON TenantPolicy: quotas, weights, API keys); empty = one unlimited default tenant")
		aging       = fs.Duration("aging", 0, "dispatcher starvation-aging interval: a queued job gains one priority class per interval waited (0 = default 30s)")
		shed        = fs.String("shed", "", "load-shed stage thresholds as three load fractions, e.g. 0.75,0.90,0.97 (empty = defaults)")
		shedMem     = fs.Int64("shed-mem", 0, "heap in-use bytes forcing at least shed stage 2 (coordinator-only); 0 = off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var sinks []obs.Sink
	if *metrics != "" {
		mf, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		defer mf.Close()
		sinks = append(sinks, obs.NewNDJSONSink(mf))
	}
	rec := obs.NewRecorder(sinks...)
	// The deferred close drains buffered telemetry on EVERY exit path —
	// the same flush contract gfre's CLI honors.
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	policy, err := loadTenantPolicy(*tenants)
	if err != nil {
		return err
	}
	shedCfg, err := parseShed(*shed)
	if err != nil {
		return err
	}
	shedCfg.MemHighBytes = uint64(*shedMem)

	// The hub is always on: it costs nothing until a job asks for sharding,
	// and peers can join at any time. The recorder lets its per-peer circuit
	// breakers surface as metrics and events.
	hub := shard.NewHub()
	hub.SetRecorder(rec)

	q, err := server.NewQueue(server.Config{
		Dir:         *spool,
		Capacity:    *capacity,
		Workers:     *workers,
		MaxAttempts: *maxAttempts,
		RetryBase:   *retryBase,
		RetryCap:    *retryCap,
		Recorder:    rec,
		// NewQueue attaches the journal to the recorder itself; it must not
		// be attached here too or every event would be delivered twice.
		Journal:       obs.NewJournal(*journalCap),
		Hub:           hub,
		ShardLeaseTTL: *leaseTTL,
		Policy:        policy,
		AgingStep:     *aging,
		Shed:          shedCfg,
	})
	if err != nil {
		return err
	}

	// Peer mode: execute cone leases for other gfred nodes alongside (or
	// instead of) serving local jobs. Peer loops poll until shutdown; a
	// coordinator node that dies mid-run simply stops granting leases, and
	// its own expiry machinery re-queues whatever this peer held.
	peerCtx, stopPeers := context.WithCancel(context.Background())
	defer stopPeers()
	for _, base := range strings.Split(*peers, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		fmt.Fprintf(stderr, "gfred: executing cone leases for peer %s (%d workers)\n", base, *peerWorkers)
		go shard.RunPeer(peerCtx, base, shard.PeerConfig{ //nolint:errcheck — exits with peerCtx
			ID: "peer-" + *addr, Workers: *peerWorkers, Recorder: rec,
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.NewServer(q, rec)}
	fmt.Fprintf(stderr, "gfred: serving on http://%s (spool %s, capacity %d, %d workers)\n",
		ln.Addr(), *spool, *capacity, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "gfred: %v — draining (grace %v)\n", sig, *drainGrace)
		// Readiness flips to 503 the moment draining starts; finish or
		// checkpoint the work, then stop the listener.
		q.Drain(*drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "gfred: drained, %d job(s) left for the next start\n", q.Active())
		return nil
	case err := <-serveErr:
		return err
	}
}

// loadTenantPolicy reads the -tenants JSON policy file ("" = zero policy:
// one unlimited default tenant).
func loadTenantPolicy(path string) (server.TenantPolicy, error) {
	var p server.TenantPolicy
	if path == "" {
		return p, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("tenant policy %s: %w", path, err)
	}
	return p, nil
}

// parseShed parses "-shed a,b,c" into the three stage-entry load fractions.
func parseShed(s string) (server.ShedConfig, error) {
	var cfg server.ShedConfig
	if s == "" {
		return cfg, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return cfg, fmt.Errorf("-shed wants three comma-separated load fractions, got %q", s)
	}
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 || v > 1 {
			return cfg, fmt.Errorf("-shed threshold %q: want a load fraction in (0,1]", part)
		}
		cfg.Enter[i] = v
	}
	return cfg, nil
}
