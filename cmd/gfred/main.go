// Command gfred is the gfre extraction service: an HTTP daemon that accepts
// multiplier netlists into a bounded durable job queue, reverse engineers
// their irreducible polynomials under the resource governor, and survives
// both its own restarts and the jobs' crashes.
//
//	gfred -addr :8080 -spool /var/lib/gfred
//
// API:
//
//	POST /jobs             submit (JSON job spec, or raw netlist with ?format=)
//	GET  /jobs             list jobs
//	GET  /jobs/{id}        job status and result
//	GET  /jobs/{id}/events live job telemetry as SSE (resumable via Last-Event-ID)
//	GET  /events           the whole telemetry journal as SSE
//	GET  /debug/live       browser live view (queue, per-job progress, cone heatmap)
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining)
//	GET  /metrics          metrics: JSON by default, Prometheus text format
//	                       with Accept: text/plain or ?format=prometheus
//
// Every accepted job is persisted to the spool before the 202 response, so
// a daemon crash loses nothing: on the next start the spool is replayed,
// and jobs that were mid-extraction resume from their checkpoints instead
// of starting over. SIGTERM drains gracefully — intake stops, running jobs
// get a grace period, then are cancelled cooperatively with their
// checkpoints synced. When the queue is full, submissions are shed with
// 429 and a Retry-After hint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "gfred:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("gfred", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "localhost:8080", "HTTP listen address")
		spool       = fs.String("spool", "gfred-spool", "durable job spool directory (jobs, states, checkpoints)")
		capacity    = fs.Int("capacity", 64, "queue capacity (queued + running); beyond it submissions get 429")
		workers     = fs.Int("workers", 1, "concurrent extractions (each is internally parallel)")
		maxAttempts = fs.Int("max-attempts", 3, "default attempts per job before it fails permanently")
		retryBase   = fs.Duration("retry-base", time.Second, "base retry backoff (doubles per attempt, with jitter)")
		retryCap    = fs.Duration("retry-cap", 2*time.Minute, "retry backoff ceiling")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long SIGTERM lets in-flight jobs finish before cancelling them")
		metrics     = fs.String("metrics", "", "stream telemetry events to this NDJSON file")
		journalCap  = fs.Int("journal", obs.DefaultJournalCapacity, "event journal capacity backing SSE replay (/events, /jobs/{id}/events)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var sinks []obs.Sink
	if *metrics != "" {
		mf, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		defer mf.Close()
		sinks = append(sinks, obs.NewNDJSONSink(mf))
	}
	rec := obs.NewRecorder(sinks...)
	// The deferred close drains buffered telemetry on EVERY exit path —
	// the same flush contract gfre's CLI honors.
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	q, err := server.NewQueue(server.Config{
		Dir:         *spool,
		Capacity:    *capacity,
		Workers:     *workers,
		MaxAttempts: *maxAttempts,
		RetryBase:   *retryBase,
		RetryCap:    *retryCap,
		Recorder:    rec,
		// NewQueue attaches the journal to the recorder itself; it must not
		// be attached here too or every event would be delivered twice.
		Journal: obs.NewJournal(*journalCap),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.NewServer(q, rec)}
	fmt.Fprintf(stderr, "gfred: serving on http://%s (spool %s, capacity %d, %d workers)\n",
		ln.Addr(), *spool, *capacity, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "gfred: %v — draining (grace %v)\n", sig, *drainGrace)
		// Readiness flips to 503 the moment draining starts; finish or
		// checkpoint the work, then stop the listener.
		q.Drain(*drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "gfred: drained, %d job(s) left for the next start\n", q.Active())
		return nil
	case err := <-serveErr:
		return err
	}
}
