// Command gfred is the gfre extraction service: an HTTP daemon that accepts
// multiplier netlists into a bounded durable job queue, reverse engineers
// their irreducible polynomials under the resource governor, and survives
// both its own restarts and the jobs' crashes.
//
//	gfred -addr :8080 -spool /var/lib/gfred
//
// API:
//
//	POST /jobs             submit (JSON job spec, or raw netlist with ?format=)
//	GET  /jobs             list jobs
//	GET  /jobs/{id}        job status and result
//	GET  /jobs/{id}/events live job telemetry as SSE (resumable via Last-Event-ID)
//	GET  /events           the whole telemetry journal as SSE
//	GET  /debug/live       browser live view (queue, per-job progress, cone heatmap)
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining)
//	GET  /metrics          metrics: JSON by default, Prometheus text format
//	                       with Accept: text/plain or ?format=prometheus
//	POST /shards/lease       lease a batch of cone IDs to a peer (204 = no work)
//	POST /shards/{id}/renew  heartbeat a lease (410 = fenced)
//	POST /shards/{id}/result submit packed cone results (410 = fenced)
//
// Jobs submitted with "shard" > 0 run under the lease-based sharded
// extractor: their cones are leased to local workers and to any gfred
// peers started with -peers pointing at this node. Worker death, network
// partitions and duplicated submissions are absorbed by lease expiry and
// the epoch fence; see package shard.
//
// Every accepted job is persisted to the spool before the 202 response, so
// a daemon crash loses nothing: on the next start the spool is replayed,
// and jobs that were mid-extraction resume from their checkpoints instead
// of starting over. SIGTERM drains gracefully — intake stops, running jobs
// get a grace period, then are cancelled cooperatively with their
// checkpoints synced. When the queue is full, submissions are shed with
// 429 and a Retry-After hint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
	"github.com/galoisfield/gfre/internal/server"
	"github.com/galoisfield/gfre/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "gfred:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("gfred", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "localhost:8080", "HTTP listen address")
		spool       = fs.String("spool", "gfred-spool", "durable job spool directory (jobs, states, checkpoints)")
		capacity    = fs.Int("capacity", 64, "queue capacity (queued + running); beyond it submissions get 429")
		workers     = fs.Int("workers", 1, "concurrent extractions (each is internally parallel)")
		maxAttempts = fs.Int("max-attempts", 3, "default attempts per job before it fails permanently")
		retryBase   = fs.Duration("retry-base", time.Second, "base retry backoff (doubles per attempt, with jitter)")
		retryCap    = fs.Duration("retry-cap", 2*time.Minute, "retry backoff ceiling")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long SIGTERM lets in-flight jobs finish before cancelling them")
		metrics     = fs.String("metrics", "", "stream telemetry events to this NDJSON file")
		journalCap  = fs.Int("journal", obs.DefaultJournalCapacity, "event journal capacity backing SSE replay (/events, /jobs/{id}/events)")
		peers       = fs.String("peers", "", "comma-separated base URLs of other gfred nodes to execute cone leases for (distributed extraction)")
		peerWorkers = fs.Int("peer-workers", 1, "concurrent lease-executing goroutines per peer URL")
		leaseTTL    = fs.Duration("lease-ttl", 0, "shard lease heartbeat deadline (0 = default); leases not renewed within it re-queue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var sinks []obs.Sink
	if *metrics != "" {
		mf, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		defer mf.Close()
		sinks = append(sinks, obs.NewNDJSONSink(mf))
	}
	rec := obs.NewRecorder(sinks...)
	// The deferred close drains buffered telemetry on EVERY exit path —
	// the same flush contract gfre's CLI honors.
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	q, err := server.NewQueue(server.Config{
		Dir:         *spool,
		Capacity:    *capacity,
		Workers:     *workers,
		MaxAttempts: *maxAttempts,
		RetryBase:   *retryBase,
		RetryCap:    *retryCap,
		Recorder:    rec,
		// NewQueue attaches the journal to the recorder itself; it must not
		// be attached here too or every event would be delivered twice.
		Journal: obs.NewJournal(*journalCap),
		// The hub is always on: it costs nothing until a job asks for
		// sharding, and peers can join at any time.
		Hub:           shard.NewHub(),
		ShardLeaseTTL: *leaseTTL,
	})
	if err != nil {
		return err
	}

	// Peer mode: execute cone leases for other gfred nodes alongside (or
	// instead of) serving local jobs. Peer loops poll until shutdown; a
	// coordinator node that dies mid-run simply stops granting leases, and
	// its own expiry machinery re-queues whatever this peer held.
	peerCtx, stopPeers := context.WithCancel(context.Background())
	defer stopPeers()
	for _, base := range strings.Split(*peers, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		fmt.Fprintf(stderr, "gfred: executing cone leases for peer %s (%d workers)\n", base, *peerWorkers)
		go shard.RunPeer(peerCtx, base, shard.PeerConfig{ //nolint:errcheck — exits with peerCtx
			ID: "peer-" + *addr, Workers: *peerWorkers, Recorder: rec,
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.NewServer(q, rec)}
	fmt.Fprintf(stderr, "gfred: serving on http://%s (spool %s, capacity %d, %d workers)\n",
		ln.Addr(), *spool, *capacity, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "gfred: %v — draining (grace %v)\n", sig, *drainGrace)
		// Readiness flips to 503 the moment draining starts; finish or
		// checkpoint the work, then stop the listener.
		q.Drain(*drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "gfred: drained, %d job(s) left for the next start\n", q.Active())
		return nil
	case err := <-serveErr:
		return err
	}
}
