// Command gffuzz runs differential-testing campaigns against the whole
// reverse-engineering pipeline: it plants a random irreducible P(x), builds a
// multiplier, pushes it through random optimization passes, scrambling and
// format round trips, then demands that extraction recovers exactly the
// planted polynomial and that simulation matches GF(2^m) arithmetic.
//
// Usage:
//
//	gffuzz -n 500 -seed 1                  # deterministic 500-case campaign
//	gffuzz -n 200 -arch montgomery -m 4-16 # one architecture, wider fields
//	gffuzz -repro out/ -ndjson log.ndjson  # minimized repros + telemetry
//	gffuzz -selfcheck                      # prove the harness catches bugs
//	gffuzz -n 50 -diagnose -inject 2       # trojan-localization campaign
//	gffuzz -n 40 -chaos                    # fault-injected shard scheduling
//	gffuzz -n 10 -overload                 # adversarial multi-tenant queues
//	gffuzz -n 30 -obfuscate                # logic-locking detection arms race
//
// A campaign is fully determined by (-seed, -n, the sampling flags): case i
// depends only on the seed and i, never on scheduling, so any failure can be
// re-run in isolation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/diffcheck"
	"github.com/galoisfield/gfre/internal/gen"
	"github.com/galoisfield/gfre/internal/gf2poly"
	"github.com/galoisfield/gfre/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gffuzz:", err)
		os.Exit(1)
	}
}

func parseRange(s string) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		if lo, err = strconv.Atoi(s[:i]); err != nil {
			return 0, 0, fmt.Errorf("bad field-size range %q", s)
		}
		if hi, err = strconv.Atoi(s[i+1:]); err != nil {
			return 0, 0, fmt.Errorf("bad field-size range %q", s)
		}
		return lo, hi, nil
	}
	if lo, err = strconv.Atoi(s); err != nil {
		return 0, 0, fmt.Errorf("bad field size %q", s)
	}
	return lo, lo, nil
}

func parseArchs(s string) ([]diffcheck.Arch, error) {
	if s == "" {
		return nil, nil
	}
	known := map[diffcheck.Arch]bool{}
	for _, a := range diffcheck.AllArchs() {
		known[a] = true
	}
	var out []diffcheck.Arch
	for _, part := range strings.Split(s, ",") {
		a := diffcheck.Arch(strings.TrimSpace(part))
		if !known[a] {
			return nil, fmt.Errorf("unknown architecture %q (have %v)", a, diffcheck.AllArchs())
		}
		out = append(out, a)
	}
	return out, nil
}

func parseFormats(s string) ([]diffcheck.Format, error) {
	if s == "" {
		return nil, nil
	}
	known := map[diffcheck.Format]bool{}
	for _, f := range diffcheck.AllFormats() {
		known[f] = true
	}
	var out []diffcheck.Format
	for _, part := range strings.Split(s, ",") {
		f := diffcheck.Format(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("unknown format %q (have %v)", f, diffcheck.AllFormats())
		}
		out = append(out, f)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gffuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n           = fs.Int("n", 100, "number of cases")
		seed        = fs.Int64("seed", 1, "campaign seed (same seed = same cases)")
		workers     = fs.Int("workers", 0, "parallel case runners (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-case budget")
		mrange      = fs.String("m", "3-12", "field-size range, e.g. 8 or 4-16")
		archs       = fs.String("arch", "", "comma-separated architectures (default: all)")
		formats     = fs.String("format", "", "comma-separated round-trip formats (default: all)")
		optPasses   = fs.Int("opt", 2, "max random optimization passes per case")
		scramble    = fs.Bool("scramble", true, "include port-scrambled cases (extraction must infer ports)")
		adversarial = fs.Int("adversarial", 10, "mix in a random-DAG robustness case every N cases (0 = off)")
		inject      = fs.Int("inject", 0, "flip XOR #((k-1) mod count) in every case; the campaign must fail everywhere (with -diagnose: number of trojans per case)")
		diagnose    = fs.Bool("diagnose", false, "fault-tolerance campaign: plant -inject trojans (default 1) in distinct cones, require P(x) recovery by consensus AND trojan localization")
		resume      = fs.Bool("resume", false, "crash-recovery campaign: hard-cancel each extraction at a random cone boundary, resume from its checkpoint, require exact P(x) and cone reuse")
		chaos       = fs.Bool("chaos", false, "chaos campaign: run each extraction through the lease-based shard scheduler while killing workers, expiring leases and duplicating/reordering submissions; require exact P(x) and zero double-counted cones")
		overload    = fs.Bool("overload", false, "overload campaign: attack a small gfred queue with a greedy batch-flooder and a deadline-abuser while a well-behaved tenant submits; require exact P(x) at bounded p99 and zero quota violations")
		obfuscate   = fs.Bool("obfuscate", false, "obfuscation campaign: logic-lock each multiplier with random key gates (xor/mux/opaque), require correct-key equivalence, exact key-input recovery by the semantic detector, and zero false positives on the clean design")
		ndjson      = fs.String("ndjson", "", "stream per-case telemetry events to this NDJSON file")
		repro       = fs.String("repro", "", "write a minimized .eqn repro per failure into this directory")
		selfcheck   = fs.Bool("selfcheck", false, "inject a reduction-network bug and verify it is caught and minimized")
		verbose     = fs.Bool("v", false, "print each case as it finishes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selfcheck {
		return runSelfcheck(stdout)
	}

	minM, maxM, err := parseRange(*mrange)
	if err != nil {
		return err
	}
	archList, err := parseArchs(*archs)
	if err != nil {
		return err
	}
	formatList, err := parseFormats(*formats)
	if err != nil {
		return err
	}

	var rec *obs.Recorder
	if *ndjson != "" {
		f, err := os.Create(*ndjson)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = obs.NewRecorder(obs.NewNDJSONSink(f))
		defer rec.Close()
	}

	cfg := diffcheck.Config{
		N: *n, Seed: *seed, Workers: *workers, Timeout: *timeout,
		MinM: minM, MaxM: maxM, Archs: archList, Formats: formatList,
		MaxOptPasses: *optPasses, Scramble: *scramble,
		Adversarial: *adversarial, Inject: *inject, Diagnose: *diagnose,
		Resume: *resume, Chaos: *chaos, Overload: *overload, Obfuscate: *obfuscate,
		Recorder: rec, ReproDir: *repro,
	}
	if *verbose {
		for i := 0; i < cfg.N; i++ {
			fmt.Fprintf(stdout, "case %3d: %s\n", i, diffcheck.NewCase(i, cfg).Label())
		}
	}
	sum, err := diffcheck.RunCampaign(cfg)
	if err != nil {
		return err
	}
	printSummary(stdout, sum)
	if *diagnose {
		// Diagnosis mode: cases pass only if consensus recovered P(x) and
		// localization covered every planted gate, so plain failure counting
		// applies; the precision line above is the campaign's deliverable.
		if sum.Failed > 0 {
			return fmt.Errorf("%d of %d diagnosis cases failed", sum.Failed, sum.Cases)
		}
		return nil
	}
	if *inject > 0 {
		// Inverted mode: the campaign is healthy only if every multiplier
		// case failed (the harness caught the planted bug each time).
		if sum.Passed > sum.ByArch["adversarial"] {
			return fmt.Errorf("inject mode: %d corrupted cases escaped the oracles", sum.Passed-sum.ByArch["adversarial"])
		}
		fmt.Fprintln(stdout, "inject mode: every corrupted case was caught")
		return nil
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d cases failed", sum.Failed, sum.Cases)
	}
	return nil
}

func printSummary(w io.Writer, sum *diffcheck.Summary) {
	fmt.Fprintf(w, "gffuzz: %d cases, %d passed, %d failed", sum.Cases, sum.Passed, sum.Failed)
	if sum.Panics > 0 {
		fmt.Fprintf(w, " (%d panics)", sum.Panics)
	}
	if sum.Timeouts > 0 {
		fmt.Fprintf(w, " (%d timeouts)", sum.Timeouts)
	}
	fmt.Fprintf(w, " in %v\n", sum.Duration.Round(time.Millisecond))
	for _, dim := range []struct {
		title string
		m     map[string]int
	}{{"by architecture", sum.ByArch}, {"by format", sum.ByFormat}} {
		keys := make([]string, 0, len(dim.m))
		for k := range dim.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  %s:", dim.title)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, dim.m[k])
		}
		fmt.Fprintln(w)
	}
	if sum.Resumed > 0 {
		fmt.Fprintf(w, "  resume: %d interrupted runs recovered, %d checkpointed cones reused\n",
			sum.Resumed, sum.ReusedCones)
	}
	if sum.Chaosed > 0 {
		fmt.Fprintf(w, "  chaos: %d fault-injected runs recovered (%d leases expired, %d zombies fenced, %d leases stolen)\n",
			sum.Chaosed, sum.ChaosExpired, sum.ChaosFenced, sum.ChaosStolen)
	}
	if sum.Overloaded > 0 {
		fmt.Fprintf(w, "  overload: %d attacked queues stayed fair (%d quota rejects, %d shed rejects, %d deduped, %d deadlines expired, worst well-tenant p99 %dms)\n",
			sum.Overloaded, sum.QuotaRejects, sum.ShedRejects, sum.Deduped, sum.DeadlinesExpired, sum.WorstWellP99MS)
	}
	if sum.Obfuscated > 0 {
		fmt.Fprintf(w, "  obfuscate: %d locked designs analyzed, %d/%d planted keys detected, %d opaque constants exposed\n",
			sum.Obfuscated, sum.KeysDetected, sum.KeysPlanted, sum.OpaqueHits)
	}
	if sum.Diagnosed > 0 {
		fmt.Fprintf(w, "  localization: %d/%d cases fully localized (precision %.0f%%), median best-suspect rank %d\n",
			sum.LocHits, sum.Diagnosed, 100*sum.LocPrecision(), sum.MedianLocRank())
	}
	for i, f := range sum.Failures {
		fmt.Fprintf(w, "  FAIL case %d [%s] at %s: %s\n", f.Case.Index, f.Case.Label(), f.Stage, f.Err)
		if sum.Repros[i] != "" {
			fmt.Fprintf(w, "       repro: %s\n", sum.Repros[i])
		}
	}
}

// runSelfcheck proves the harness end to end: it corrupts one XOR in the
// reduction network of a GF(2^8) Mastrovito multiplier, demands that the
// differential oracles catch it, and that the minimizer shrinks the failure
// to a sub-50-gate repro that still deviates from the specification.
func runSelfcheck(w io.Writer) error {
	p8 := gf2poly.MustParse("x^8+x^4+x^3+x+1")
	n, err := gen.Mastrovito(8, p8)
	if err != nil {
		return err
	}
	nx := diffcheck.CountXor(n)
	bad, err := diffcheck.FlipXor(n, nx-1) // last XOR = reduction network
	if err != nil {
		return err
	}
	bd := diffcheck.CanonicalBinding(8)
	if err := diffcheck.SimOracle(bad, p8, bd, 4, 1); err == nil {
		return fmt.Errorf("selfcheck: simulation oracle MISSED the injected bug")
	}
	fmt.Fprintf(w, "selfcheck: injected bug caught by the simulation oracle\n")
	min, err := diffcheck.Minimize(bad, diffcheck.MinimizeOptions{P: p8, Binding: bd, Seed: 1})
	if err != nil {
		return fmt.Errorf("selfcheck: minimize: %w", err)
	}
	if min.NumGates() >= 50 {
		return fmt.Errorf("selfcheck: repro has %d gates, want < 50", min.NumGates())
	}
	dev, err := diffcheck.Deviations(min, p8, bd, 1)
	if err != nil {
		return err
	}
	if len(dev) == 0 {
		return fmt.Errorf("selfcheck: minimized repro no longer deviates")
	}
	fmt.Fprintf(w, "selfcheck: minimized %d-gate failure to a %d-gate repro (output bit %d)\n",
		bad.NumGates(), min.NumGates(), dev[0])
	return nil
}
