package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	if lo, hi, err := parseRange("4-16"); err != nil || lo != 4 || hi != 16 {
		t.Errorf("4-16 = %d, %d, %v", lo, hi, err)
	}
	if lo, hi, err := parseRange("8"); err != nil || lo != 8 || hi != 8 {
		t.Errorf("8 = %d, %d, %v", lo, hi, err)
	}
	for _, bad := range []string{"", "a-b", "4-", "x"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Errorf("parseRange(%q) should fail", bad)
		}
	}
}

func TestParseArchAndFormatValidation(t *testing.T) {
	if _, err := parseArchs("mastrovito, montgomery"); err != nil {
		t.Errorf("valid archs rejected: %v", err)
	}
	if _, err := parseArchs("booth"); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := parseFormats("eqn,blif"); err != nil {
		t.Errorf("valid formats rejected: %v", err)
	}
	if _, err := parseFormats("edif"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunSmallCampaign(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-n", "12", "-seed", "7", "-m", "3-8", "-workers", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "12 passed, 0 failed") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
}

func TestRunInjectModeCatchesEverything(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	err := run([]string{"-n", "6", "-seed", "3", "-m", "4-8", "-adversarial", "0",
		"-inject", "5", "-repro", dir}, &out, &errOut)
	if err != nil {
		t.Fatalf("inject campaign should exit clean when all bugs are caught: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "every corrupted case was caught") {
		t.Errorf("missing inject verdict:\n%s", out.String())
	}
	repros, _ := filepath.Glob(filepath.Join(dir, "repro_case*.eqn"))
	if len(repros) != 6 {
		t.Errorf("want 6 repro files, got %d", len(repros))
	}
}

func TestRunDiagnoseCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diag.ndjson")
	var out, errOut bytes.Buffer
	err := run([]string{"-n", "5", "-seed", "9", "-m", "5-9", "-adversarial", "0",
		"-diagnose", "-inject", "1", "-ndjson", path}, &out, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "localization: 5/5 cases fully localized (precision 100%)") {
		t.Errorf("missing localization precision line:\n%s", out.String())
	}
	// Per-case localization telemetry must land in the NDJSON stream.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	locEvents := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var e struct {
			Event string           `json:"ev"`
			V     map[string]int64 `json:"v"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Event == "case_pass" {
			if hit, ok := e.V["loc_hit"]; ok {
				locEvents++
				if hit != 1 {
					t.Errorf("case_pass with loc_hit = %d, want 1", hit)
				}
				if rank, ok := e.V["loc_rank"]; !ok || rank < 0 {
					t.Errorf("case_pass missing usable loc_rank (v = %v)", e.V)
				}
			}
		}
	}
	if locEvents != 5 {
		t.Errorf("found %d case_pass events with localization fields, want 5", locEvents)
	}
}

func TestRunNDJSONTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.ndjson")
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "4", "-seed", "2", "-m", "3-5", "-ndjson", path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Event string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events[e.Event]++
	}
	if events["case_start"] != 4 || events["case_pass"] != 4 {
		t.Errorf("event counts = %v, want 4 case_start and 4 case_pass", events)
	}
}

func TestRunSelfcheck(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-selfcheck"}, &out, &errOut); err != nil {
		t.Fatalf("selfcheck: %v\n%s", err, out.String())
	}
	for _, want := range []string{"caught by the simulation oracle", "gate repro"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-m", "nope"}, &out, &errOut); err == nil {
		t.Error("bad -m accepted")
	}
	if err := run([]string{"-arch", "booth"}, &out, &errOut); err == nil {
		t.Error("bad -arch accepted")
	}
}

func TestRunResumeCampaign(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-resume", "-n", "6", "-seed", "3", "-m", "4-8", "-workers", "4"}, &out, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "6 passed, 0 failed") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "resume:") || !strings.Contains(out.String(), "cones reused") {
		t.Errorf("summary missing the resume line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "resume=6") {
		t.Errorf("by-architecture tally missing resume cases:\n%s", out.String())
	}
}
