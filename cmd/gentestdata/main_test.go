package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	gfre "github.com/galoisfield/gfre"
)

// TestRunReproducesCommittedTestdata regenerates every golden netlist into a
// scratch directory and byte-compares it with the committed copy: the
// generator, the scrambler and the trojan injector must all stay
// deterministic, or the committed files silently drift from the tool.
func TestRunReproducesCommittedTestdata(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(dir, &out); err != nil {
		t.Fatal(err)
	}
	committed := filepath.Join("..", "..", "testdata")
	names := []string{
		"mastrovito16.eqn", "montgomery12.blif", "karatsuba16_syn.v",
		"digitserial8_mapped.eqn", "trojan8.eqn", "scrambled16.eqn",
	}
	for _, name := range names {
		want, err := os.ReadFile(filepath.Join(committed, name))
		if err != nil {
			t.Fatalf("committed golden file missing: %v", err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: regenerated file differs from the committed copy", name)
		}
	}
}

func TestRunCreatesMissingDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "testdata")
	var out bytes.Buffer
	if err := run(dir, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mastrovito16.eqn")); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedFilesBehave spot-checks the two adversarial outputs: the
// trojan must FAIL extraction and the scrambled multiplier must still be
// recoverable through port inference.
func TestGeneratedFilesBehave(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(dir, &out); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "trojan8.eqn"))
	if err != nil {
		t.Fatal(err)
	}
	trojan, err := gfre.ReadEQN(f, "trojan8")
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gfre.Extract(trojan, gfre.Options{}); err == nil {
		t.Error("trojaned multiplier extracted cleanly; the flipped XOR went unnoticed")
	}

	f, err = os.Open(filepath.Join(dir, "scrambled16.eqn"))
	if err != nil {
		t.Fatal(err)
	}
	scrambled, err := gfre.ReadEQN(f, "scrambled16")
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	p16, _ := gfre.DefaultPolynomial(16)
	ext, _, err := gfre.ExtractInferred(scrambled, gfre.Options{})
	if err != nil {
		t.Fatalf("scrambled multiplier not recoverable: %v", err)
	}
	if !ext.P.Equal(p16) {
		t.Errorf("scrambled extraction recovered %v, want %v", ext.P, p16)
	}
}
