// Command gentestdata regenerates the committed golden netlists under
// testdata/ (consumed by gfre_files_test.go). Deterministic: fixed seeds,
// fixed polynomials.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	gfre "github.com/galoisfield/gfre"
)

func write(path string, n *gfre.Netlist, format string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	switch format {
	case "eqn":
		err = n.WriteEQN(f)
	case "blif":
		err = n.WriteBLIF(f)
	case "verilog":
		err = n.WriteVerilog(f)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// flipXor replaces the k-th XOR gate with OR (the trojan used in tests).
func flipXor(n *gfre.Netlist, k int) *gfre.Netlist {
	out := gfre.NewNetlist(n.Name + "_trojan")
	mapping := make([]int, n.NumGates())
	seen := 0
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		var nid int
		var err error
		switch {
		case g.Type == gfre.Input:
			nid, err = out.AddInput(n.NameOf(id))
		case g.Type == gfre.Xor:
			ty := gfre.Xor
			if seen == k {
				ty = gfre.Or
			}
			seen++
			nid, err = out.AddGate(ty, fanin...)
		default:
			nid, err = out.AddGate(g.Type, fanin...)
		}
		if err != nil {
			log.Fatal(err)
		}
		mapping[id] = nid
	}
	names := n.OutputNames()
	for i, id := range n.Outputs() {
		if err := out.MarkOutput(names[i], mapping[id]); err != nil {
			log.Fatal(err)
		}
	}
	return out
}

func anonymize(n *gfre.Netlist, seed int64) *gfre.Netlist {
	r := rand.New(rand.NewSource(seed))
	ins := n.Inputs()
	perm := r.Perm(len(ins))
	out := gfre.NewNetlist(n.Name + "_anon")
	mapping := make([]int, n.NumGates())
	for newPos, oldPos := range perm {
		id, err := out.AddInput(fmt.Sprintf("sig_%03d", newPos))
		if err != nil {
			log.Fatal(err)
		}
		mapping[ins[oldPos]] = id
	}
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		if g.Type == gfre.Input {
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = mapping[f]
		}
		nid, err := out.AddGate(g.Type, fanin...)
		if err != nil {
			log.Fatal(err)
		}
		mapping[id] = nid
	}
	outs := n.Outputs()
	operm := r.Perm(len(outs))
	for newPos, oldPos := range operm {
		if err := out.MarkOutput(fmt.Sprintf("port_%03d", newPos), mapping[outs[oldPos]]); err != nil {
			log.Fatal(err)
		}
	}
	return out
}

func main() {
	p16, _ := gfre.DefaultPolynomial(16)
	p12, _ := gfre.DefaultPolynomial(12)
	p8, _ := gfre.DefaultPolynomial(8)

	mast, err := gfre.NewMastrovito(16, p16)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/mastrovito16.eqn", mast, "eqn")

	mont, err := gfre.NewMontgomery(12, p12)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/montgomery12.blif", mont, "blif")

	kar, err := gfre.NewKaratsuba(16, p16)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := gfre.Synthesize(kar)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/karatsuba16_syn.v", syn, "verilog")

	ds, err := gfre.NewDigitSerial(8, p8, 3)
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := gfre.TechMap(ds, gfre.MapNandHeavy)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/digitserial8_mapped.eqn", mapped, "eqn")

	base, err := gfre.NewMastrovito(8, p8)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/trojan8.eqn", flipXor(base, 11), "eqn")

	m16, err := gfre.NewMastrovito(16, p16)
	if err != nil {
		log.Fatal(err)
	}
	write("testdata/scrambled16.eqn", anonymize(m16, 42), "eqn")
	fmt.Println("testdata regenerated")
}
