// Command gentestdata regenerates the committed golden netlists under
// testdata/ (consumed by gfre_files_test.go). Deterministic: fixed seeds,
// fixed polynomials.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	gfre "github.com/galoisfield/gfre"
)

func main() {
	if err := run("testdata", os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gentestdata:", err)
		os.Exit(1)
	}
}

func write(dir, name string, n *gfre.Netlist, format string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	switch format {
	case "eqn":
		err = n.WriteEQN(f)
	case "blif":
		err = n.WriteBLIF(f)
	case "verilog":
		err = n.WriteVerilog(f)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(dir string, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	p16, _ := gfre.DefaultPolynomial(16)
	p12, _ := gfre.DefaultPolynomial(12)
	p8, _ := gfre.DefaultPolynomial(8)

	mast, err := gfre.NewMastrovito(16, p16)
	if err != nil {
		return err
	}
	if err := write(dir, "mastrovito16.eqn", mast, "eqn"); err != nil {
		return err
	}

	mont, err := gfre.NewMontgomery(12, p12)
	if err != nil {
		return err
	}
	if err := write(dir, "montgomery12.blif", mont, "blif"); err != nil {
		return err
	}

	kar, err := gfre.NewKaratsuba(16, p16)
	if err != nil {
		return err
	}
	syn, err := gfre.Synthesize(kar)
	if err != nil {
		return err
	}
	if err := write(dir, "karatsuba16_syn.v", syn, "verilog"); err != nil {
		return err
	}

	ds, err := gfre.NewDigitSerial(8, p8, 3)
	if err != nil {
		return err
	}
	mapped, err := gfre.TechMap(ds, gfre.MapNandHeavy)
	if err != nil {
		return err
	}
	if err := write(dir, "digitserial8_mapped.eqn", mapped, "eqn"); err != nil {
		return err
	}

	base, err := gfre.NewMastrovito(8, p8)
	if err != nil {
		return err
	}
	trojan, err := gfre.FlipXor(base, 11)
	if err != nil {
		return err
	}
	if err := write(dir, "trojan8.eqn", trojan, "eqn"); err != nil {
		return err
	}

	m16, err := gfre.NewMastrovito(16, p16)
	if err != nil {
		return err
	}
	scrambled, err := gfre.Scramble(m16, 42)
	if err != nil {
		return err
	}
	if err := write(dir, "scrambled16.eqn", scrambled, "eqn"); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "testdata regenerated")
	return nil
}
