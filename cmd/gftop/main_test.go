package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// ev builds a telemetry event the way the recorder serializes it.
func ev(ts float64, kind, name string, v map[string]int64) obs.Event {
	return obs.Event{TS: ts, Ev: kind, Name: name, V: v}
}

func TestModelProgressAndETA(t *testing.T) {
	m := newModel("test", "")
	m.apply(ev(0, obs.EvSpanStart, "rewrite", map[string]int64{"bits": 8, "threads": 1}))
	for bit := 0; bit < 4; bit++ {
		m.apply(ev(float64(bit), obs.EvBitStart, fmt.Sprintf("z%d", bit), map[string]int64{"bit": int64(bit)}))
		m.apply(ev(float64(bit)+0.5, obs.EvBitFinish, fmt.Sprintf("z%d", bit),
			map[string]int64{"bit": int64(bit), "peak": int64(10 * (bit + 1))}))
	}

	frame := m.render()
	if !strings.Contains(frame, "cones 4/8") {
		t.Errorf("frame lacks cone progress:\n%s", frame)
	}
	if !strings.Contains(frame, "phase rewrite") {
		t.Errorf("frame lacks phase:\n%s", frame)
	}
	if !strings.Contains(frame, "peak 40 terms") {
		t.Errorf("frame lacks peak watermark:\n%s", frame)
	}
	// 3 completions over the 3.0s between the first (0.5) and last (3.5)
	// bit_finish timestamps, 4 cones left: rate 1.0/s, ETA 4.0s.
	rate, eta, ok := m.rateETALocked(8)
	if !ok || rate < 0.95 || rate > 1.05 {
		t.Errorf("rate = %v ok=%v, want ~1.0", rate, ok)
	}
	if eta < 3.9 || eta > 4.1 {
		t.Errorf("eta = %v, want ~4.0", eta)
	}
	if !strings.Contains(frame, "ETA") {
		t.Errorf("frame lacks ETA:\n%s", frame)
	}
}

func TestModelAnomalyFlags(t *testing.T) {
	m := newModel("test", "")
	m.apply(ev(0, obs.EvSpanStart, "rewrite", map[string]int64{"bits": 4}))
	m.apply(ev(1, obs.EvBitFinish, "z0", map[string]int64{"bit": 0, "peak": 10}))
	m.apply(ev(2, obs.EvBitFinish, "z1", map[string]int64{"bit": 1, "peak": 9000}))
	m.apply(ev(2, obs.EvConeAnomaly, "z1",
		map[string]int64{"bit": 1, "peak": 9000, "predicted": 10000, "ratio_pct": 90, "median_pct": 5}))

	if got := m.anomalousCones(); len(got) != 1 || got[0] != "z1" {
		t.Fatalf("anomalousCones = %v, want [z1]", got)
	}
	frame := m.render()
	if !strings.Contains(frame, "anomalies 1") {
		t.Errorf("frame lacks anomaly count:\n%s", frame)
	}
	if !strings.Contains(frame, "ANOMALY z1: peak 9000 = 90% of no-cancellation bound 10000") {
		t.Errorf("frame lacks anomaly detail:\n%s", frame)
	}
	// Cell 1 of the heat grid must be the '!' flag.
	gridLine := ""
	for _, line := range strings.Split(frame, "\n") {
		if strings.ContainsRune(line, '!') && !strings.Contains(line, "ANOMALY") {
			gridLine = line
		}
	}
	if cells := []rune(gridLine); len(cells) != 4 || cells[1] != '!' {
		t.Errorf("heat grid %q: want 4 cells with '!' at bit 1", gridLine)
	}
}

// A per-cone child span_start under the rewrite span must not clobber the
// phase line — only real phases do.
func TestModelConeSpansDoNotChangePhase(t *testing.T) {
	m := newModel("test", "")
	m.apply(obs.Event{Ev: obs.EvSpanStart, Name: "rewrite", Span: 7, V: map[string]int64{"bits": 4}})
	m.apply(obs.Event{Ev: obs.EvSpanStart, Name: "z2", Span: 9, Parent: 7})
	if m.phase != "rewrite" {
		t.Fatalf("phase = %q after cone child span, want rewrite", m.phase)
	}
	m.apply(obs.Event{Ev: obs.EvSpanEnd, Name: "rewrite", Span: 7, Parent: 3})
	m.apply(obs.Event{Ev: obs.EvSpanStart, Name: "extract", Span: 10, Parent: 3})
	if m.phase != "extract" {
		t.Fatalf("phase = %q, want extract", m.phase)
	}
}

func TestModelJobLifecycleAndRetryReset(t *testing.T) {
	m := newModel("test", "")
	ja := obs.Event{Ev: "job_start", Job: "a1", V: map[string]int64{"attempt": 1}}
	m.apply(ja)
	m.apply(obs.Event{Ev: obs.EvSpanStart, Name: "rewrite", Job: "a1", Span: 2, V: map[string]int64{"bits": 4}})
	m.apply(obs.Event{Ev: obs.EvBitFinish, Name: "z0", Job: "a1", V: map[string]int64{"bit": 0, "peak": 5}})
	if m.doneCones != 1 {
		t.Fatalf("doneCones = %d, want 1", m.doneCones)
	}
	// Retry: the next attempt restarts the cone board from zero.
	m.apply(obs.Event{Ev: "job_retry", Job: "a1", V: map[string]int64{"attempt": 1}})
	m.apply(obs.Event{Ev: "job_start", Job: "a1", V: map[string]int64{"attempt": 2}})
	if m.doneCones != 0 {
		t.Fatalf("doneCones = %d after job restart, want 0", m.doneCones)
	}
	if cont := m.apply(obs.Event{Ev: "job_done", Job: "a1"}); cont {
		t.Fatal("apply(job_done) should report terminal (false)")
	}
	if !m.done() {
		t.Fatal("model not terminal after job_done")
	}
	if frame := m.render(); !strings.Contains(frame, "job a1: done") {
		t.Errorf("frame lacks terminal job line:\n%s", frame)
	}
}

func TestModelJobFilter(t *testing.T) {
	m := newModel("test", "want")
	m.apply(obs.Event{Ev: obs.EvBitFinish, Name: "z0", Job: "other", V: map[string]int64{"bit": 0, "peak": 5}})
	if m.doneCones != 0 || m.events != 0 {
		t.Fatalf("filtered event counted: done=%d events=%d", m.doneCones, m.events)
	}
	m.apply(obs.Event{Ev: obs.EvBitFinish, Name: "z0", Job: "want", V: map[string]int64{"bit": 0, "peak": 5}})
	if m.doneCones != 1 {
		t.Fatalf("matching event dropped: done=%d", m.doneCones)
	}
}

func TestSSEURL(t *testing.T) {
	cases := []struct{ source, job, want string }{
		{"http://h:1", "", "http://h:1/events"},
		{"http://h:1/", "", "http://h:1/events"},
		{"http://h:1", "j7", "http://h:1/jobs/j7/events"},
		{"http://h:1/jobs/j7/events", "j7", "http://h:1/jobs/j7/events"},
		{"http://h:1/custom", "", "http://h:1/custom"},
	}
	for _, c := range cases {
		got, err := sseURL(c.source, c.job)
		if err != nil || got != c.want {
			t.Errorf("sseURL(%q, %q) = %q, %v; want %q", c.source, c.job, got, err, c.want)
		}
	}
}

// writeNDJSON marshals events one per line, the -metrics file format.
func writeNDJSON(t *testing.T, path string, events []obs.Event) {
	t.Helper()
	var b strings.Builder
	for _, e := range events {
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFollowNDJSONOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	writeNDJSON(t, path, []obs.Event{
		ev(0, obs.EvSpanStart, "rewrite", map[string]int64{"bits": 2}),
		ev(1, obs.EvBitFinish, "z0", map[string]int64{"bit": 0, "peak": 3}),
		ev(2, obs.EvBitFinish, "z1", map[string]int64{"bit": 1, "peak": 4}),
	})
	m := newModel(path, "")
	if err := followNDJSON(context.Background(), path, true, m); err != nil {
		t.Fatal(err)
	}
	if m.doneCones != 2 || m.total != 2 {
		t.Fatalf("done=%d total=%d, want 2/2", m.doneCones, m.total)
	}
}

// Tailing mode keeps reading lines appended after EOF and stops on the
// job's terminal event.
func TestFollowNDJSONTailsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	writeNDJSON(t, path, []obs.Event{
		{Ev: "job_start", Job: "j1", V: map[string]int64{"attempt": 1}},
	})
	m := newModel(path, "")
	done := make(chan error, 1)
	go func() { done <- followNDJSON(context.Background(), path, false, m) }()

	time.Sleep(50 * time.Millisecond)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(obs.Event{Ev: "job_done", Job: "j1"})
	// Write the line in two chunks to exercise partial-line handling.
	f.Write(raw[:len(raw)/2])
	f.Sync()
	time.Sleep(300 * time.Millisecond)
	f.Write(raw[len(raw)/2:])
	f.Write([]byte("\n"))
	f.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not stop at the appended terminal event")
	}
	if m.jobStatus != "done" {
		t.Fatalf("jobStatus = %q, want done", m.jobStatus)
	}
}

// The SSE client must resume with Last-Event-ID after the server drops the
// stream, and apply each event exactly once.
func TestSSEClientResumesWithLastEventID(t *testing.T) {
	var gotResume string
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		writeFrame := func(seq uint64, e obs.Event) {
			e.Seq = seq
			raw, _ := json.Marshal(e)
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, raw)
			fl.Flush()
		}
		switch conns {
		case 1:
			fmt.Fprintf(w, ": hb\n\n") // heartbeat comment must be skipped
			writeFrame(1, obs.Event{Ev: "job_start", Job: "j1", V: map[string]int64{"attempt": 1}})
			writeFrame(2, obs.Event{Ev: obs.EvBitFinish, Name: "z0", Job: "j1",
				V: map[string]int64{"bit": 0, "peak": 7}})
			// Drop the connection mid-stream.
		default:
			gotResume = r.Header.Get("Last-Event-ID")
			writeFrame(3, obs.Event{Ev: obs.EvBitFinish, Name: "z1", Job: "j1",
				V: map[string]int64{"bit": 1, "peak": 9}})
			writeFrame(4, obs.Event{Ev: "job_done", Job: "j1"})
		}
	}))
	defer srv.Close()

	m := newModel(srv.URL, "j1")
	c := &sseClient{url: srv.URL + "/jobs/j1/events"}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.follow(ctx, m); err != nil {
		t.Fatal(err)
	}
	if gotResume != "2" {
		t.Errorf("Last-Event-ID on reconnect = %q, want 2", gotResume)
	}
	if m.doneCones != 2 {
		t.Errorf("doneCones = %d, want 2", m.doneCones)
	}
	if m.jobStatus != "done" || !m.done() {
		t.Errorf("jobStatus = %q terminal=%v, want done/true", m.jobStatus, m.done())
	}
	if m.lastSeq != 4 {
		t.Errorf("lastSeq = %d, want 4", m.lastSeq)
	}
}

// Snapshot frames (event: snapshot) carry job state, not telemetry events.
func TestSSEClientAppliesSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: snapshot\ndata: {\"id\":\"j9\",\"status\":\"done\"}\n\n")
	}))
	defer srv.Close()

	m := newModel(srv.URL, "")
	c := &sseClient{url: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.follow(ctx, m); err != nil {
		t.Fatal(err)
	}
	if m.job != "j9" || m.jobStatus != "done" || !m.done() {
		t.Fatalf("snapshot not applied: job=%q status=%q terminal=%v", m.job, m.jobStatus, m.done())
	}
}

func TestRunOnceRendersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	writeNDJSON(t, path, []obs.Event{
		ev(0, obs.EvSpanStart, "rewrite", map[string]int64{"bits": 2}),
		ev(1, obs.EvBitFinish, "z0", map[string]int64{"bit": 0, "peak": 3}),
		ev(2, obs.EvBitFinish, "z1", map[string]int64{"bit": 1, "peak": 4}),
	})
	var out, errBuf strings.Builder
	if err := run([]string{"-once", path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	frame := out.String()
	if !strings.Contains(frame, "cones 2/2") || !strings.Contains(frame, "100%") {
		t.Errorf("unexpected frame:\n%s", frame)
	}
	if strings.Contains(frame, "\x1b[") {
		t.Errorf("-once frame must not use escape codes:\n%s", frame)
	}
}

// The admission plane's telemetry renders on the job line (tenant, priority)
// and as a banner while the daemon is shedding load — and the banner drops
// again when the shed stage returns to zero.
func TestModelTenantColumnsAndOverloadBanner(t *testing.T) {
	m := newModel("test", "")
	m.apply(obs.Event{Ev: "job_submitted", Job: "j1", Name: "acme",
		V: map[string]int64{"priority": 2, "seq": 7}})
	frame := m.render()
	if !strings.Contains(frame, "job j1: queued   tenant acme   prio 2") {
		t.Errorf("frame lacks tenant/priority columns:\n%s", frame)
	}
	if strings.Contains(frame, "OVERLOAD") {
		t.Errorf("banner shown at shed stage 0:\n%s", frame)
	}

	m.apply(obs.Event{Ev: "shed_stage", V: map[string]int64{"stage": 2, "from": 1, "load_pct": 91}})
	if frame = m.render(); !strings.Contains(frame, "OVERLOAD: load-shed stage 2") {
		t.Errorf("frame lacks overload banner:\n%s", frame)
	}

	// The job restarting must not erase its admission attributes.
	m.apply(obs.Event{Ev: "job_start", Job: "j1", V: map[string]int64{"attempt": 1}})
	if frame = m.render(); !strings.Contains(frame, "tenant acme") {
		t.Errorf("job_start erased the tenant column:\n%s", frame)
	}

	m.apply(obs.Event{Ev: "shed_stage", V: map[string]int64{"stage": 0, "from": 2, "load_pct": 40}})
	if frame = m.render(); strings.Contains(frame, "OVERLOAD") {
		t.Errorf("banner lingers after recovery:\n%s", frame)
	}
}
