// Command gftop is a terminal live view over gfre/gfred telemetry: per-cone
// rewriting progress, completion rate and ETA, and cone-cost anomaly flags,
// refreshed in place like top(1).
//
// It tails either source of the same event stream:
//
//	gftop run.ndjson                      a gfre/gfred -metrics NDJSON file
//	                                      (live runs are tailed; finished
//	                                      files replay instantly)
//	gftop http://localhost:8080           a gfred daemon (the /events SSE
//	                                      stream; reconnects resume via
//	                                      Last-Event-ID)
//	gftop -job <id> http://localhost:8080 one job's stream (/jobs/{id}/events);
//	                                      gftop exits when the job ends
//
// -once renders a single frame after the source is exhausted instead of
// refreshing — the scriptable form.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "gftop:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gftop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refresh = fs.Duration("refresh", 500*time.Millisecond, "screen refresh period")
		job     = fs.String("job", "", "watch one gfred job: selects /jobs/{id}/events on URL sources and filters file sources")
		once    = fs.Bool("once", false, "render one frame after the source ends instead of refreshing live")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gftop [flags] <telemetry.ndjson | gfred-url>\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return errors.New("expected exactly one source argument")
	}
	source := fs.Arg(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := newModel(source, *job)
	errCh := make(chan error, 1)
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		streamURL, err := sseURL(source, *job)
		if err != nil {
			return err
		}
		c := &sseClient{url: streamURL}
		go func() { errCh <- c.follow(ctx, m) }()
	} else {
		go func() { errCh <- followNDJSON(ctx, source, *once, m) }()
	}

	if *once {
		// Exhaust the source, then print the single frame.
		err := <-errCh
		fmt.Fprint(stdout, m.render())
		return err
	}

	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Fprint(stdout, "\x1b[H\x1b[2J"+m.render())
		case err := <-errCh:
			// Final frame so the terminal shows the end state (the job's
			// terminal status, the full heatmap) after the stream closed.
			fmt.Fprint(stdout, "\x1b[H\x1b[2J"+m.render())
			return err
		case <-ctx.Done():
			fmt.Fprint(stdout, "\n")
			return nil
		}
	}
}

// sseURL resolves the stream endpoint for a gfred base or explicit URL:
// bare hosts get /events, -job rewrites to that job's stream unless the
// caller already named an explicit path.
func sseURL(source, job string) (string, error) {
	u, err := url.Parse(source)
	if err != nil {
		return "", fmt.Errorf("source url: %w", err)
	}
	switch {
	case job != "" && !strings.Contains(u.Path, "/jobs/"):
		u.Path = "/jobs/" + job + "/events"
	case u.Path == "" || u.Path == "/":
		u.Path = "/events"
	}
	return u.String(), nil
}
