package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

func TestRetryAfterParsing(t *testing.T) {
	if d := retryAfter("2"); d != 2*time.Second {
		t.Errorf("retryAfter(2) = %v", d)
	}
	if d := retryAfter(" 0 "); d != 0 {
		t.Errorf("retryAfter(0) = %v", d)
	}
	if d := retryAfter("-3"); d != 0 {
		t.Errorf("retryAfter(-3) = %v", d)
	}
	if d := retryAfter("garbage"); d != 0 {
		t.Errorf("retryAfter(garbage) = %v", d)
	}
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfter(future); d < 3*time.Second || d > 5*time.Second {
		t.Errorf("retryAfter(HTTP-date +5s) = %v", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := retryAfter(past); d != 0 {
		t.Errorf("retryAfter(past date) = %v", d)
	}
}

func TestNextDelayGrowsAndCaps(t *testing.T) {
	c := &sseClient{retryBase: 100 * time.Millisecond, retryCap: 800 * time.Millisecond,
		rng: rand.New(rand.NewSource(1))}
	// Jitter keeps every delay within [0.75d, 1.25d] of the schedule
	// 100, 200, 400, 800, 800, ... ms.
	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		got := c.nextDelay(0)
		lo, hi := w*time.Millisecond*3/4, w*time.Millisecond*5/4
		if got < lo || got > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i, got, lo, hi)
		}
	}
	// A Retry-After hint overrides the schedule entirely.
	if got := c.nextDelay(2 * time.Second); got < 1500*time.Millisecond || got > 2500*time.Millisecond {
		t.Errorf("hinted delay %v outside Retry-After window", got)
	}
	// Reset drops back to the base.
	c.attempts = 0
	if got := c.nextDelay(0); got > 125*time.Millisecond {
		t.Errorf("post-reset delay %v, want ~base", got)
	}
}

// A server stuck in an accept-then-drop restart loop must see escalating
// reconnect gaps, not a constant-rate storm — and the client must still
// finish the job once the server recovers.
func TestSSEClientBacksOffDuringReconnectStorm(t *testing.T) {
	var (
		mu    sync.Mutex
		times []time.Time
	)
	const drops = 5
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		if n <= drops {
			// Accept, heartbeat, drop: a crash loop. Comments are not
			// frames, so the backoff ladder must keep climbing.
			fmt.Fprintf(w, ": hb\n\n")
			fl.Flush()
			return
		}
		raw, _ := json.Marshal(obs.Event{Ev: "job_done", Job: "j1"})
		fmt.Fprintf(w, "id: 1\ndata: %s\n\n", raw)
		fl.Flush()
	}))
	defer srv.Close()

	c := &sseClient{url: srv.URL,
		retryBase: 20 * time.Millisecond, retryCap: 160 * time.Millisecond,
		rng: rand.New(rand.NewSource(7))}
	m := newModel(srv.URL, "j1")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.follow(ctx, m); err != nil {
		t.Fatal(err)
	}
	if !m.done() {
		t.Fatal("client did not finish the job after the storm")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != drops+1 {
		t.Fatalf("%d connections, want %d", len(times), drops+1)
	}
	first := times[1].Sub(times[0])
	last := times[drops].Sub(times[drops-1])
	// Schedule 20,40,80,160,160ms with ±25% jitter: the first gap is at most
	// 25ms, the last at least 120ms. Scheduling delay only widens gaps.
	if first > 60*time.Millisecond {
		t.Errorf("first reconnect gap %v, want near base", first)
	}
	if last < 100*time.Millisecond {
		t.Errorf("gap after %d drops is %v: backoff is not escalating", drops, last)
	}
	if last <= first {
		t.Errorf("gaps not growing: first %v, last %v", first, last)
	}
}

// 429/503 load shedding is retryable — even on the very first attempt — and
// the server's Retry-After hint overrides the exponential schedule.
func TestSSEClientHonorsRetryAfter(t *testing.T) {
	var (
		mu    sync.Mutex
		times []time.Time
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shedding load", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		raw, _ := json.Marshal(obs.Event{Ev: "job_done", Job: "j1"})
		fmt.Fprintf(w, "id: 1\ndata: %s\n\n", raw)
		w.(http.Flusher).Flush()
	}))
	defer srv.Close()

	// A tiny retryBase proves the 1s wait came from Retry-After, not the
	// exponential schedule.
	c := &sseClient{url: srv.URL, retryBase: time.Millisecond, retryCap: 4 * time.Millisecond,
		rng: rand.New(rand.NewSource(3))}
	m := newModel(srv.URL, "j1")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.follow(ctx, m); err != nil {
		t.Fatalf("503 on first attempt must retry, got %v", err)
	}
	if !m.done() {
		t.Fatal("client did not finish the job")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("%d connections, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 700*time.Millisecond {
		t.Errorf("reconnect gap %v: Retry-After: 1 was not honored", gap)
	}
}

// Other non-200 statuses (auth failures, bad paths) stay hard errors.
func TestSSEClientFailsHardOnNonRetryableStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such stream", http.StatusNotFound)
	}))
	defer srv.Close()
	c := &sseClient{url: srv.URL}
	m := newModel(srv.URL, "")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.follow(ctx, m); err == nil {
		t.Fatal("404 must be a hard error")
	}
}
