package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// followNDJSON tails an NDJSON telemetry file (gfre -metrics / gfred
// -metrics output), applying each decoded event to the model. With
// once=true it stops at EOF; otherwise it keeps polling for appended
// lines, tail -f style, until the context ends or the stream's job
// reaches its terminal event.
func followNDJSON(ctx context.Context, path string, once bool, m *model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m.setConn("reading")

	r := bufio.NewReader(f)
	var pending []byte // partial last line, completed by a later write
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			raw := line
			if len(pending) > 0 {
				raw = append(pending, line...)
				pending = nil
			}
			var ev obs.Event
			if jerr := json.Unmarshal(raw, &ev); jerr == nil {
				if !m.apply(ev) {
					return nil
				}
			}
			continue
		}
		if err != io.EOF {
			return err
		}
		pending = append(pending, line...)
		if once {
			return nil
		}
		m.setConn("tailing")
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id, event, data string
}

// readSSE parses text/event-stream frames from r, calling deliver for each
// complete frame. deliver returning false stops the read cleanly. Comment
// lines (the server's heartbeats) are skipped.
func readSSE(r *bufio.Reader, deliver func(sseFrame) bool) error {
	var fr sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if fr.id != "" || fr.data != "" || fr.event != "" {
				if !deliver(fr) {
					return nil
				}
			}
			fr = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id:"):
			fr.id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			fr.event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if fr.data != "" {
				fr.data += "\n"
			}
			fr.data += strings.TrimSpace(line[len("data:"):])
		}
	}
}

// jobSnap is the subset of a gfred job state the snapshot frames carry that
// gftop cares about.
type jobSnap struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// sseClient tails a gfred SSE endpoint, resuming across reconnects with
// Last-Event-ID so no journal event is lost or double-applied.
type sseClient struct {
	url    string
	lastID string
	client *http.Client
}

// follow streams events into the model until the context ends, the server
// closes a terminal (per-job) stream, or the connection cannot be
// re-established. The first connection failing is a hard error; later
// failures retry with backoff because gfred restarts are routine.
func (c *sseClient) follow(ctx context.Context, m *model) error {
	hc := c.client
	if hc == nil {
		hc = http.DefaultClient
	}
	connected := false
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		if c.lastID != "" {
			req.Header.Set("Last-Event-ID", c.lastID)
		}
		resp, err := hc.Do(req)
		if err == nil && resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("%s: %s: %s", c.url, resp.Status, strings.TrimSpace(string(body)))
		}
		if err != nil {
			if ctx.Err() != nil || m.done() {
				return nil
			}
			if !connected {
				return err
			}
			m.setConn("reconnecting")
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Second):
			}
			continue
		}
		connected = true
		m.setConn("connected")

		stopped := false
		// A read error here is just a dropped connection — the retry path
		// below resumes from lastID either way.
		readSSE(bufio.NewReader(resp.Body), func(fr sseFrame) bool { //nolint:errcheck
			if fr.id != "" {
				c.lastID = fr.id
			}
			if fr.event == "snapshot" {
				c.applySnapshot(m, fr.data)
				return true
			}
			var ev obs.Event
			if jerr := json.Unmarshal([]byte(fr.data), &ev); jerr != nil {
				return true
			}
			if !m.apply(ev) {
				stopped = true
				return false
			}
			return true
		})
		resp.Body.Close()
		if stopped || ctx.Err() != nil || m.done() {
			return nil
		}
		// Server closed a non-terminal stream (restart, journal hiccup):
		// resume from the last seen sequence number.
		m.setConn("reconnecting")
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(time.Second):
		}
	}
}

// applySnapshot folds a snapshot frame: a single job state on per-job
// streams, the whole job list on /events.
func (c *sseClient) applySnapshot(m *model, data string) {
	var list []jobSnap
	if err := json.Unmarshal([]byte(data), &list); err == nil {
		for _, js := range list {
			m.snapshotJob(js.ID, js.Status)
		}
		return
	}
	var one jobSnap
	if err := json.Unmarshal([]byte(data), &one); err == nil && one.ID != "" {
		m.snapshotJob(one.ID, one.Status)
	}
}
