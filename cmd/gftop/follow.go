package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/galoisfield/gfre/internal/obs"
)

// followNDJSON tails an NDJSON telemetry file (gfre -metrics / gfred
// -metrics output), applying each decoded event to the model. With
// once=true it stops at EOF; otherwise it keeps polling for appended
// lines, tail -f style, until the context ends or the stream's job
// reaches its terminal event.
func followNDJSON(ctx context.Context, path string, once bool, m *model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m.setConn("reading")

	r := bufio.NewReader(f)
	var pending []byte // partial last line, completed by a later write
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			raw := line
			if len(pending) > 0 {
				raw = append(pending, line...)
				pending = nil
			}
			var ev obs.Event
			if jerr := json.Unmarshal(raw, &ev); jerr == nil {
				if !m.apply(ev) {
					return nil
				}
			}
			continue
		}
		if err != io.EOF {
			return err
		}
		pending = append(pending, line...)
		if once {
			return nil
		}
		m.setConn("tailing")
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id, event, data string
}

// readSSE parses text/event-stream frames from r, calling deliver for each
// complete frame. deliver returning false stops the read cleanly. Comment
// lines (the server's heartbeats) are skipped.
func readSSE(r *bufio.Reader, deliver func(sseFrame) bool) error {
	var fr sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if fr.id != "" || fr.data != "" || fr.event != "" {
				if !deliver(fr) {
					return nil
				}
			}
			fr = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id:"):
			fr.id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			fr.event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if fr.data != "" {
				fr.data += "\n"
			}
			fr.data += strings.TrimSpace(line[len("data:"):])
		}
	}
}

// jobSnap is the subset of a gfred job state the snapshot frames carry that
// gftop cares about.
type jobSnap struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// sseClient tails a gfred SSE endpoint, resuming across reconnects with
// Last-Event-ID so no journal event is lost or double-applied.
type sseClient struct {
	url    string
	lastID string
	client *http.Client

	// Reconnect backoff: capped exponential with jitter, reset by every
	// successful connection. Zero values select 250ms base / 15s cap.
	retryBase time.Duration
	retryCap  time.Duration
	attempts  int
	rng       *rand.Rand
}

// nextDelay computes the wait before the next reconnect attempt. A positive
// hint (the server's Retry-After) takes precedence over the exponential
// schedule; either way ±25% jitter is applied so a fleet of dashboards
// reconnecting to one restarted gfred does not stampede it in lockstep.
func (c *sseClient) nextDelay(hint time.Duration) time.Duration {
	base, ceil := c.retryBase, c.retryCap
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 15 * time.Second
	}
	// The cap bounds our own schedule only: an explicit server hint knows
	// better than the client-side ceiling.
	d := hint
	if d <= 0 {
		d = base
		for i := 0; i < c.attempts && d < ceil; i++ {
			d *= 2
		}
		if d > ceil {
			d = ceil
		}
	}
	if c.attempts < 30 {
		c.attempts++
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return d - d/4 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// pause sleeps the backoff delay; false means the context ended.
func (c *sseClient) pause(ctx context.Context, m *model, hint time.Duration) bool {
	m.setConn("reconnecting")
	select {
	case <-ctx.Done():
		return false
	case <-time.After(c.nextDelay(hint)):
		return true
	}
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date); 0
// means no usable hint.
func retryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// follow streams events into the model until the context ends, the server
// closes a terminal (per-job) stream, or the connection cannot be
// re-established. The first connection failing hard is an error; transport
// drops after that, and 429/503 load-shedding at any point, retry with
// capped-exponential backoff (honoring Retry-After) because gfred restarts
// and overload bursts are routine.
func (c *sseClient) follow(ctx context.Context, m *model) error {
	hc := c.client
	if hc == nil {
		hc = http.DefaultClient
	}
	connected := false
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		if c.lastID != "" {
			req.Header.Set("Last-Event-ID", c.lastID)
		}
		resp, err := hc.Do(req)
		if err == nil && (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) {
			// Load shedding: the server is alive and telling us when to come
			// back. Honor its hint even on the very first attempt.
			hint := retryAfter(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if m.done() || !c.pause(ctx, m, hint) {
				return nil
			}
			continue
		}
		if err == nil && resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("%s: %s: %s", c.url, resp.Status, strings.TrimSpace(string(body)))
		}
		if err != nil {
			if ctx.Err() != nil || m.done() {
				return nil
			}
			if !connected {
				return err
			}
			if !c.pause(ctx, m, 0) {
				return nil
			}
			continue
		}
		connected = true
		m.setConn("connected")

		stopped := false
		// A read error here is just a dropped connection — the retry path
		// below resumes from lastID either way.
		readSSE(bufio.NewReader(resp.Body), func(fr sseFrame) bool { //nolint:errcheck
			// A delivered frame — not merely an accepted connection — is the
			// health signal that resets the backoff ladder: a gfred stuck in
			// an accept-then-crash restart loop keeps escalating.
			c.attempts = 0
			if fr.id != "" {
				c.lastID = fr.id
			}
			if fr.event == "snapshot" {
				c.applySnapshot(m, fr.data)
				return true
			}
			var ev obs.Event
			if jerr := json.Unmarshal([]byte(fr.data), &ev); jerr != nil {
				return true
			}
			if !m.apply(ev) {
				stopped = true
				return false
			}
			return true
		})
		resp.Body.Close()
		if stopped || ctx.Err() != nil || m.done() {
			return nil
		}
		// Server closed a non-terminal stream (restart, journal hiccup):
		// resume from the last seen sequence number.
		if !c.pause(ctx, m, 0) {
			return nil
		}
	}
}

// applySnapshot folds a snapshot frame: a single job state on per-job
// streams, the whole job list on /events.
func (c *sseClient) applySnapshot(m *model, data string) {
	var list []jobSnap
	if err := json.Unmarshal([]byte(data), &list); err == nil {
		for _, js := range list {
			m.snapshotJob(js.ID, js.Status)
		}
		return
	}
	var one jobSnap
	if err := json.Unmarshal([]byte(data), &one); err == nil && one.ID != "" {
		m.snapshotJob(one.ID, one.Status)
	}
}
