package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/galoisfield/gfre/internal/obs"
)

// cone is the view state of one output-bit cone.
type cone struct {
	bit     int
	name    string
	peak    int64
	running bool
	done    bool
	anom    bool
}

// anomNote is one cone_anomaly payload kept for the footer.
type anomNote struct {
	name     string
	peak     int64
	bound    int64
	ratioPct int64
}

// model folds the telemetry stream into the state the view renders. It is
// fed from the follower goroutine and read by the render ticker, so every
// entry point locks.
type model struct {
	mu        sync.Mutex
	source    string
	filterJob string // -job: drop events tagged with a different job

	job       string // job currently displayed ("" for plain gfre streams)
	jobStatus string
	tenant    string // owning tenant of the displayed job, from job_submitted
	priority  int64  // scheduling class of the displayed job (0 = unknown)
	shedStage int64  // daemon's load-shed stage (>0 renders the OVERLOAD banner)
	phase     string
	total     int // output bits, from the rewrite span_start "bits" attr
	cones     map[int]*cone
	doneCones int
	peakMax   int64
	anoms     []anomNote

	rewriteSpan int64 // suppresses per-cone child spans from the phase line
	firstTS     float64
	lastTS      float64
	doneAtFirst bool
	events      int64
	lastSeq     uint64
	connNote    string
	terminal    bool
}

func newModel(source, filterJob string) *model {
	return &model{source: source, filterJob: filterJob, cones: map[int]*cone{}}
}

// setConn records the connection state shown in the header.
func (m *model) setConn(note string) {
	m.mu.Lock()
	m.connNote = note
	m.mu.Unlock()
}

// snapshotJob folds a job-state snapshot frame (SSE `event: snapshot`).
func (m *model) snapshotJob(id, status string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.filterJob != "" && id != m.filterJob {
		return
	}
	if m.job == "" || m.job == id {
		m.job, m.jobStatus = id, status
		if status == "done" || status == "failed" {
			m.terminal = true
		}
	}
}

// apply folds one telemetry event. It returns false once the watched job
// reached a terminal state — the follower uses that to stop cleanly.
func (m *model) apply(ev obs.Event) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.filterJob != "" && ev.Job != "" && ev.Job != m.filterJob {
		return true
	}
	m.events++
	if ev.Seq > m.lastSeq {
		m.lastSeq = ev.Seq
	}
	if ev.TS > m.lastTS {
		m.lastTS = ev.TS
	}
	switch ev.Ev {
	case "job_submitted":
		if m.job == "" || m.job == ev.Job {
			m.job, m.jobStatus = ev.Job, "queued"
			// The submission event carries the admission attributes: the
			// owning tenant in Name, the scheduling class in the payload.
			m.tenant = ev.Name
			m.priority = ev.V["priority"]
		}
	case "shed_stage":
		m.shedStage = ev.V["stage"]
	case "job_start":
		// A (re)starting job resets the cone board: an earlier attempt's
		// progress is stale, the new attempt rewrites every cone again.
		if m.job == "" || m.job == ev.Job || m.filterJob == ev.Job {
			m.job, m.jobStatus = ev.Job, "running"
			m.resetRunLocked()
		}
	case "job_done", "job_failed":
		if m.job == "" || m.job == ev.Job {
			m.job = ev.Job
			m.jobStatus = strings.TrimPrefix(ev.Ev, "job_")
			m.terminal = true
			return false
		}
	case "job_retry":
		if m.job == ev.Job {
			m.jobStatus = "backoff"
		}
	case "job_interrupted":
		if m.job == ev.Job {
			m.jobStatus = "queued"
		}
	case obs.EvSpanStart:
		if m.rewriteSpan != 0 && ev.Parent == m.rewriteSpan {
			break // per-cone child span, not a phase
		}
		if ev.Name == "rewrite" {
			if bits := int(ev.V["bits"]); bits > 0 {
				if bits != m.total || m.doneCones == m.total {
					m.resetRunLocked()
				}
				m.total = bits
			}
			m.rewriteSpan = ev.Span
		}
		m.phase = ev.Name
	case obs.EvSpanEnd:
		if ev.Name == "rewrite" && ev.Span == m.rewriteSpan {
			m.rewriteSpan = 0
		}
	case obs.EvBitStart:
		c := m.cone(int(ev.V["bit"]))
		c.name, c.running = ev.Name, true
	case obs.EvBitFinish:
		c := m.cone(int(ev.V["bit"]))
		if !c.done {
			m.doneCones++
			if !m.doneAtFirst {
				m.firstTS, m.doneAtFirst = ev.TS, true
			}
		}
		c.name, c.running, c.done = ev.Name, false, true
		c.peak = ev.V["peak"]
		if c.peak > m.peakMax {
			m.peakMax = c.peak
		}
	case obs.EvConeAnomaly:
		c := m.cone(int(ev.V["bit"]))
		c.anom = true
		if ev.Name != "" {
			c.name = ev.Name
		}
		m.anoms = append(m.anoms, anomNote{
			name:     c.name,
			peak:     ev.V["peak"],
			bound:    ev.V["predicted"],
			ratioPct: ev.V["ratio_pct"],
		})
	}
	return true
}

func (m *model) cone(bit int) *cone {
	c := m.cones[bit]
	if c == nil {
		c = &cone{bit: bit}
		m.cones[bit] = c
	}
	return c
}

// resetRunLocked clears per-run progress (new job attempt or new rewrite).
func (m *model) resetRunLocked() {
	m.cones = map[int]*cone{}
	m.doneCones = 0
	m.peakMax = 0
	m.anoms = nil
	m.doneAtFirst = false
	m.phase = ""
	m.rewriteSpan = 0
}

// done reports whether the watched job reached its terminal event.
func (m *model) done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.terminal
}

// heatRamp maps a cone's relative (log-scaled) peak cost to a cell glyph.
const heatRamp = "▁▂▃▄▅▆▇█"

// render draws one full frame. Pure string building: the caller decides
// whether to prepend a clear-screen escape.
func (m *model) render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	fmt.Fprintf(&b, "gftop — %s", m.source)
	if m.connNote != "" {
		fmt.Fprintf(&b, "  (%s)", m.connNote)
	}
	b.WriteByte('\n')
	if m.shedStage > 0 {
		fmt.Fprintf(&b, "!!! OVERLOAD: load-shed stage %d — daemon is rejecting new work\n", m.shedStage)
	}
	if m.job != "" {
		fmt.Fprintf(&b, "job %s: %s", m.job, m.jobStatus)
		if m.tenant != "" {
			fmt.Fprintf(&b, "   tenant %s", m.tenant)
		}
		if m.priority > 0 {
			fmt.Fprintf(&b, "   prio %d", m.priority)
		}
		b.WriteByte('\n')
	}

	total := m.total
	if total < len(m.cones) {
		total = len(m.cones)
	}
	fmt.Fprintf(&b, "phase %-12s cones %d/%d", orDash(m.phase), m.doneCones, total)
	if rate, eta, ok := m.rateETALocked(total); ok {
		fmt.Fprintf(&b, "   %.1f cones/s   ETA %.1fs", rate, eta)
	}
	fmt.Fprintf(&b, "   peak %d terms   anomalies %d\n", m.peakMax, len(m.anoms))

	// Progress bar.
	const barWidth = 50
	filled := 0
	if total > 0 {
		filled = barWidth * m.doneCones / total
	}
	pct := 0
	if total > 0 {
		pct = 100 * m.doneCones / total
	}
	fmt.Fprintf(&b, "[%s%s] %d%%\n", strings.Repeat("#", filled),
		strings.Repeat("·", barWidth-filled), pct)

	// Per-cone heat grid, 64 cells per row: '·' pending, '~' rewriting,
	// log-scaled ramp when done, '!' flagging an anomalous cone.
	if total > 0 {
		for bit := 0; bit < total; bit++ {
			if bit > 0 && bit%64 == 0 {
				b.WriteByte('\n')
			}
			c := m.cones[bit]
			switch {
			case c == nil:
				b.WriteRune('·')
			case c.anom:
				b.WriteByte('!')
			case c.done:
				b.WriteRune(heatCell(c.peak, m.peakMax))
			case c.running:
				b.WriteByte('~')
			default:
				b.WriteRune('·')
			}
		}
		b.WriteByte('\n')
	}

	for _, a := range m.anoms {
		fmt.Fprintf(&b, "ANOMALY %s: peak %d = %d%% of no-cancellation bound %d\n",
			a.name, a.peak, a.ratioPct, a.bound)
	}
	fmt.Fprintf(&b, "%d events", m.events)
	if m.lastSeq > 0 {
		fmt.Fprintf(&b, ", seq %d", m.lastSeq)
	}
	b.WriteByte('\n')
	return b.String()
}

// rateETALocked derives the completion rate from event timestamps (not wall
// clock, so replaying a finished NDJSON file reports the run's own rate)
// and the ETA for the cones still pending.
func (m *model) rateETALocked(total int) (rate, eta float64, ok bool) {
	if m.doneCones < 2 || m.lastTS <= m.firstTS {
		return 0, 0, false
	}
	rate = float64(m.doneCones-1) / (m.lastTS - m.firstTS)
	eta = float64(total-m.doneCones) / rate
	return rate, eta, true
}

func heatCell(peak, max int64) rune {
	if peak < 0 {
		peak = 0
	}
	t := 0.0
	if max > 0 {
		t = math.Log1p(float64(peak)) / math.Log1p(float64(max))
	}
	ramp := []rune(heatRamp)
	i := int(t * float64(len(ramp)))
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	if i < 0 {
		i = 0
	}
	return ramp[i]
}

// anomalousCones lists flagged cone names sorted by bit (test hook).
func (m *model) anomalousCones() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bits []int
	for bit, c := range m.cones {
		if c.anom {
			bits = append(bits, bit)
		}
	}
	sort.Ints(bits)
	names := make([]string, len(bits))
	for i, bit := range bits {
		names[i] = m.cones[bit].name
	}
	return names
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
