package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write places src at dir/rel, creating parents.
func write(t *testing.T, dir, rel, src string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runVet(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Logf("stderr: %s", stderr.String())
	}
	return stdout.String(), code
}

func TestErrWrapFlagsSeveredChain(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "netlist/bad.go", `package netlist

import "fmt"

func f(err error) error {
	return fmt.Errorf("reading: %v", err)
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "errwrap") || !strings.Contains(out, "%v") {
		t.Fatalf("missing errwrap finding:\n%s", out)
	}
}

func TestErrWrapAcceptsWrappedChain(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "netlist/good.go", `package netlist

import "fmt"

func f(err error) error {
	return fmt.Errorf("eqn: %w", err)
}

func g(line int) error {
	return fmt.Errorf("eqn: line %d: bad token", line)
}
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestErrWrapCheckpointRequiresSentinel(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "checkpoint/bad.go", `package checkpoint

import "fmt"

func f(n int) error {
	return fmt.Errorf("snapshot claims %d bytes", n)
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "must wrap a sentinel") {
		t.Fatalf("missing sentinel finding:\n%s", out)
	}

	dir2 := t.TempDir()
	write(t, dir2, "checkpoint/good.go", `package checkpoint

import (
	"errors"
	"fmt"
)

var ErrCheckpoint = errors.New("checkpoint: unusable snapshot")

func f(n int) error {
	return fmt.Errorf("%w: snapshot claims %d bytes", ErrCheckpoint, n)
}
`)
	if out, code := runVet(t, dir2); code != 0 {
		t.Fatalf("clean checkpoint file flagged (exit %d):\n%s", code, out)
	}
}

func TestNilRecvFlagsUnguardedMethod(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "obs/bad.go", `package obs

type Counter struct{ v int64 }

// Add lacks the nil guard: deref panics on the documented nil handle.
func (c *Counter) Add(n int64) {
	c.v += n
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "nilrecv") || !strings.Contains(out, "(*Counter).Add") {
		t.Fatalf("missing nilrecv finding:\n%s", out)
	}
}

func TestNilRecvAcceptsGuardAndDelegation(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "obs/good.go", `package obs

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc is pure delegation: Add carries the guard.
func (c *Counter) Inc() { c.Add(1) }

// Value guards inside an || chain.
type Registry struct{ n int }

func (r *Registry) Len(strict bool) int {
	if r == nil || !strict {
		return 0
	}
	return r.n
}

// raise is unexported: internal callers guarantee non-nil.
func (c *Counter) raise(n int64) { c.v = n }

// Other types are out of scope.
type Event struct{ n int }

func (e *Event) Bump() { e.n++ }
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestLockOrderFlagsCycle(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/bad.go", `package server

import "sync"

type Queue struct{ mu sync.Mutex }
type Pool struct{ mu sync.Mutex }

// drain acquires Queue.mu then Pool.mu ...
func (q *Queue) drain(p *Pool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}
`)
	write(t, dir, "server/bad2.go", `package server

// expire acquires them in the opposite order: classic deadlock pair.
func (p *Pool) expire(q *Queue) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	q.mu.Unlock()
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "lockorder") || !strings.Contains(out, "cycle") {
		t.Fatalf("missing lockorder cycle finding:\n%s", out)
	}
}

func TestLockOrderAcceptsConsistentOrder(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/good.go", `package server

import "sync"

type Queue struct{ mu sync.Mutex }
type Pool struct{ mu sync.Mutex }

func (q *Queue) a(p *Pool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// Same order elsewhere: an edge, not a cycle. Sequential (non-nested)
// acquisitions in a third function add no edge at all.
func (q *Queue) b(p *Pool) {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

func (q *Queue) c(p *Pool) {
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("consistent order flagged (exit %d):\n%s", code, out)
	}
}

func TestLockOrderFlagsSelfDeadlock(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "shard/bad.go", `package shard

import "sync"

type Hub struct{ mu sync.Mutex }

// Reacquiring a held non-reentrant mutex deadlocks unconditionally.
func (h *Hub) broken() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mu.Lock()
	h.mu.Unlock()
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "Hub.mu -> Hub.mu") {
		t.Fatalf("missing self-cycle finding:\n%s", out)
	}
}

func TestCtxPropagateFlagsFreshRoot(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/bad.go", `package server

import "context"

func serve(ctx context.Context) {
	sub, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_ = sub
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ctxpropagate") {
		t.Fatalf("missing ctxpropagate finding:\n%s", out)
	}
}

func TestCtxPropagateAcceptsDefaultingAndRoots(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/good.go", `package server

import "context"

// No ctx parameter: constructing a root context is this function's job.
func newRoot() context.Context {
	return context.Background()
}

// Defaulting a nil context is the documented escape hatch.
func extract(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestTimeAfterFlagsSelectInLoop(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "shard/bad.go", `package shard

import "time"

func poll(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second):
		}
	}
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "timeafter") {
		t.Fatalf("missing timeafter finding:\n%s", out)
	}
}

func TestTimeAfterAcceptsReusableTimerAndOneShot(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "shard/good.go", `package shard

import "time"

func poll(done chan struct{}) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			t.Reset(time.Second)
		}
	}
}

// One-shot select outside any loop is fine.
func wait(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestGoLeakFlagsOrphanGoroutine(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/bad.go", `package server

func spawn(work func()) {
	go func() {
		work()
	}()
}
`)
	out, code := runVet(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "goleak") {
		t.Fatalf("missing goleak finding:\n%s", out)
	}
}

func TestGoLeakAcceptsJoinSignals(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "server/good.go", `package server

import "sync"

func spawnAll(work func() error) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()

	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()

	wg.Wait()
	<-done
	return <-errc
}

type Pool struct{}

func (p *Pool) loop() {}

// Named launches are lifecycle-managed by their owner: out of scope.
func (p *Pool) start() {
	go p.loop()
}
`)
	out, code := runVet(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

// TestRepoIsClean runs both analyzers over the actual repository: the
// disciplines gfvet enforces must hold on the code as committed.
func TestRepoIsClean(t *testing.T) {
	out, code := runVet(t, "../..")
	if code != 0 {
		t.Fatalf("gfvet found violations in the repo (exit %d):\n%s", code, out)
	}
}

// TestPackagePatternArg accepts the go-tool ./... spelling CI uses.
func TestPackagePatternArg(t *testing.T) {
	out, code := runVet(t, "../../...")
	if code != 0 {
		t.Fatalf("gfvet ../../... exit %d:\n%s", code, out)
	}
}

func TestAnalyzerFlagsDisable(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "netlist/bad.go", `package netlist

import "fmt"

func f(err error) error { return fmt.Errorf("x: %v", err) }
`)
	if out, code := runVet(t, "-errwrap=false", dir); code != 0 {
		t.Fatalf("disabled analyzer still reported (exit %d):\n%s", code, out)
	}
}
