// gfvet is the repository's custom static checker: a small multichecker in
// the spirit of go/analysis (implemented on the standard library only, so it
// builds in a hermetic environment) with two repo-specific analyzers:
//
//	errwrap — typed-error discipline in the parse and checkpoint paths.
//	  In internal/netlist, an error value interpolated into fmt.Errorf must
//	  use the %w verb: the readers funnel every failure through parseError,
//	  which tags the chain with ErrParse, and a %v/%s interpolation severs
//	  that chain so errors.Is(err, ErrParse) silently stops matching.
//	  In internal/checkpoint, every fmt.Errorf must wrap one of the package
//	  sentinels (ErrCheckpoint, ErrNoCheckpoint, ...) with %w — corruption
//	  handling dispatches on errors.Is, and an untyped error turns "wipe the
//	  snapshot and retry" into a permanent failure.
//
//	nilrecv — nil-receiver safety in internal/obs. The telemetry handles
//	  (Recorder, Span, Counter, Gauge, Histogram, Registry) are documented
//	  as no-ops on nil so instrumented hot paths never guard on recorder
//	  presence; every exported pointer-receiver method on them must check
//	  the receiver against nil before touching a field, or consist solely
//	  of delegation to another method on the same (nil-safe) receiver.
//
// Four concurrency analyzers guard the service layer (internal/server and
// internal/shard only — the repository's long-lived multi-goroutine code):
//
//	lockorder    — package-wide mutex acquisition graph; any cycle is a
//	               latent deadlock (see concurrency.go).
//	ctxpropagate — no context.Background()/TODO() where a context.Context
//	               parameter is in scope.
//	timeafter    — no time.After in a select inside a loop (a garbage
//	               timer per iteration); reuse a time.Timer.
//	goleak       — anonymous goroutines must carry a join signal
//	               (WaitGroup Done, channel send, or close).
//
// Usage: gfvet [-errwrap=false] [-nilrecv=false] [-lockorder=false]
// [-ctxpropagate=false] [-timeafter=false] [-goleak=false] [path ...]
// Paths default to "." and are walked recursively; findings print as
// file:line: [analyzer] message and any finding exits 1, like go vet.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("gfvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	errwrap := flags.Bool("errwrap", true, "check typed-error discipline in netlist/checkpoint packages")
	nilrecv := flags.Bool("nilrecv", true, "check nil-receiver safety of obs telemetry handles")
	lockorder := flags.Bool("lockorder", true, "check for mutex acquisition-order cycles in server/shard packages")
	ctxprop := flags.Bool("ctxpropagate", true, "check that server/shard functions with a ctx parameter never mint fresh context roots")
	timeafter := flags.Bool("timeafter", true, "check for time.After in select-inside-loop in server/shard packages")
	goleak := flags.Bool("goleak", true, "check that server/shard anonymous goroutines carry a join signal")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	roots := flags.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	// Accept go-tool package patterns like ./... — the walk below is already
	// recursive, so the pattern reduces to its directory prefix.
	for i, root := range roots {
		if strings.HasSuffix(root, "...") {
			root = strings.TrimSuffix(root, "...")
			root = strings.TrimSuffix(root, string(filepath.Separator))
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			roots[i] = root
		}
	}

	var findings []finding
	lockEdges := map[string][]lockEdge{} // package dir -> accumulated edges
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || name == ".git" || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("parsing %s: %w", path, err)
			}
			dir := filepath.Base(filepath.Dir(path))
			if *errwrap && (dir == "netlist" || dir == "checkpoint") {
				findings = append(findings, checkErrWrap(fset, file, dir)...)
			}
			if *nilrecv && dir == "obs" {
				findings = append(findings, checkNilRecv(fset, file)...)
			}
			if dir == "server" || dir == "shard" {
				if *lockorder {
					pkg := filepath.Dir(path)
					lockEdges[pkg] = append(lockEdges[pkg], collectLockEdges(fset, file)...)
				}
				if *ctxprop {
					findings = append(findings, checkCtxPropagate(fset, file)...)
				}
				if *timeafter {
					findings = append(findings, checkTimeAfter(fset, file)...)
				}
				if *goleak {
					findings = append(findings, checkGoLeak(fset, file)...)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "gfvet: %v\n", err)
			return 2
		}
	}
	// Lock-order cycles are a package-level property: edges from every file
	// of a package must merge before cycle detection.
	pkgs := make([]string, 0, len(lockEdges))
	for pkg := range lockEdges {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		findings = append(findings, reportLockCycles(lockEdges[pkg])...)
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", f.pos.Filename, f.pos.Line, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type finding struct {
	analyzer string
	pos      token.Position
	msg      string
}

// ---------------------------------------------------------------- errwrap --

// checkErrWrap inspects every fmt.Errorf call in a netlist or checkpoint
// file. pkg selects the rule flavor: "netlist" demands %w for interpolated
// error values, "checkpoint" additionally demands that every call wraps a
// package sentinel.
func checkErrWrap(fset *token.FileSet, file *ast.File, pkg string) []finding {
	var out []finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, finding{
			analyzer: "errwrap",
			pos:      fset.Position(pos),
			msg:      fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(file, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || !isPkgCall(call, "fmt", "Errorf") || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true // non-literal format: out of scope
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := scanVerbs(format)
		hasW := false
		for _, v := range verbs {
			if v == 'w' {
				hasW = true
			}
		}

		// Rule 1 (both packages): an error value formatted with %v/%s in a
		// call without %w severs the sentinel chain.
		for i, v := range verbs {
			argIdx := i + 1 // call.Args[0] is the format string
			if argIdx >= len(call.Args) {
				break
			}
			if (v == 'v' || v == 's') && !hasW && isErrorLike(call.Args[argIdx]) {
				report(call.Pos(),
					"error value %s formatted with %%%c; wrap it with %%w so errors.Is keeps matching the %s sentinel",
					exprName(call.Args[argIdx]), v, sentinelName(pkg))
			}
		}

		// Rule 2 (checkpoint only): every constructed error must carry a
		// sentinel. The netlist readers instead tag at the boundary via
		// parseError, so plain message-only Errorf calls are fine there.
		if pkg == "checkpoint" {
			ok := false
			for i, v := range verbs {
				argIdx := i + 1
				if v == 'w' && argIdx < len(call.Args) && isSentinel(call.Args[argIdx]) {
					ok = true
				}
			}
			if !ok {
				report(call.Pos(),
					"fmt.Errorf in package checkpoint must wrap a sentinel (e.g. %%w with ErrCheckpoint); corruption recovery dispatches on errors.Is")
			}
		}
		return true
	})
	return out
}

func sentinelName(pkg string) string {
	if pkg == "checkpoint" {
		return "ErrCheckpoint"
	}
	return "ErrParse"
}

// scanVerbs returns the verb letter of each argument-consuming printf verb
// in order. Flags, width and precision are skipped; %% consumes nothing.
func scanVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.[]*", format[i]) >= 0 {
			i++
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// isErrorLike reports whether the expression is, by naming convention, an
// error value: the identifier err (with optional digit suffixes), an
// xxxErr/errXxx identifier, a selector ending in .err/.Err, or a call to a
// method named Error-ish. Without go/types this is a heuristic, but the repo
// names error values uniformly.
func isErrorLike(e ast.Expr) bool {
	name := exprName(e)
	if name == "" {
		return false
	}
	last := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		last = name[i+1:]
	}
	lower := strings.ToLower(last)
	return lower == "err" || strings.HasPrefix(lower, "err") && !strings.HasPrefix(last, "Err") ||
		strings.HasSuffix(lower, "err") && len(lower) > 3
}

// isSentinel reports whether the expression names an exported sentinel
// (ErrCheckpoint, ErrNoCheckpoint, netlist.ErrParse, ...).
func isSentinel(e ast.Expr) bool {
	name := exprName(e)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.HasPrefix(name, "Err") && len(name) > 3
}

func exprName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := exprName(v.X); base != "" {
			return base + "." + v.Sel.Name
		}
		return v.Sel.Name
	}
	return ""
}

func isPkgCall(call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == fn
}

// ---------------------------------------------------------------- nilrecv --

// nilSafeTypes are the obs handle types documented as no-ops on a nil
// receiver. Sinks are deliberately absent: AttachSink rejects nil sinks, so
// their methods never see one.
var nilSafeTypes = map[string]bool{
	"Recorder":  true,
	"Span":      true,
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Registry":  true,
}

// checkNilRecv verifies that every exported pointer-receiver method on a
// nil-safe obs type either starts with a nil-receiver guard or is pure
// delegation to another method on the same receiver (which carries the
// guard itself).
func checkNilRecv(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || !fn.Name.IsExported() {
			continue
		}
		star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		typeName := ""
		if id, ok := star.X.(*ast.Ident); ok {
			typeName = id.Name
		}
		if !nilSafeTypes[typeName] {
			continue
		}
		if len(fn.Recv.List[0].Names) == 0 {
			continue // unnamed receiver: the body cannot dereference it
		}
		recv := fn.Recv.List[0].Names[0].Name
		if fn.Body == nil || len(fn.Body.List) == 0 {
			continue
		}
		if hasNilGuard(fn.Body.List[0], recv) || isDelegation(fn.Body.List, recv) {
			continue
		}
		out = append(out, finding{
			analyzer: "nilrecv",
			pos:      fset.Position(fn.Pos()),
			msg: fmt.Sprintf("(*%s).%s must start with `if %s == nil` (or delegate to a nil-safe method); obs handles are documented as no-ops on nil",
				typeName, fn.Name.Name, recv),
		})
	}
	return out
}

// hasNilGuard reports whether stmt is `if recv == nil { ... }`, possibly as
// one operand of a || chain (`if r == nil || s == nil`).
func hasNilGuard(stmt ast.Stmt, recv string) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	var check func(e ast.Expr) bool
	check = func(e ast.Expr) bool {
		bin, ok := e.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			return check(bin.X) || check(bin.Y)
		}
		if bin.Op != token.EQL {
			return false
		}
		return isIdentNamed(bin.X, recv) && isNilIdent(bin.Y) ||
			isNilIdent(bin.X) && isIdentNamed(bin.Y, recv)
	}
	return check(ifStmt.Cond)
}

// isDelegation reports whether the body is a single statement whose only
// action is calling a method chain rooted at the receiver, e.g.
// `c.Add(1)` or `return r.Metrics().Snapshot()`.
func isDelegation(body []ast.Stmt, recv string) bool {
	if len(body) != 1 {
		return false
	}
	var call ast.Expr
	switch s := body[0].(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	return chainRoot(call) == recv
}

// chainRoot unwinds a call/selector chain (r.Metrics().Snapshot()) to the
// name of the identifier it starts from.
func chainRoot(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.CallExpr:
			e = v.Fun
		case *ast.SelectorExpr:
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }
