package main

// Concurrency analyzers for the service layer (internal/server and
// internal/shard): the queue, scheduler, hub and lease machinery are the
// only long-lived multi-goroutine subsystems in the repository, so the
// disciplines below are enforced there and nowhere else.
//
//	lockorder    — builds a package-wide lock acquisition graph from
//	               receiver-qualified mutex calls (Queue.mu -> Pool.mu means
//	               some function acquired Pool.mu while holding Queue.mu)
//	               and reports any cycle: two functions acquiring the same
//	               pair of locks in opposite orders is a latent deadlock
//	               that no test reliably reproduces.
//	ctxpropagate — a function that already receives a context.Context must
//	               not mint fresh roots with context.Background()/TODO():
//	               the derived context loses the caller's cancellation and
//	               deadline. The `if ctx == nil { ctx = ... }` defaulting
//	               idiom is exempt.
//	timeafter    — time.After inside a select inside a loop allocates a
//	               timer per iteration that survives until it fires; idle
//	               polling loops must reuse a time.Timer instead.
//	goleak       — a `go func(){...}()` launch whose body neither signals a
//	               WaitGroup nor sends on/closes a channel cannot be joined:
//	               nothing can ever wait for it, so shutdown becomes racy.
//	               Named-call launches (go p.loop()) are exempt — lifecycle
//	               loops answer to their owning struct's Close path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ---------------------------------------------------------------- lockorder --

// lockEdge records "to was acquired while from was held" at pos.
type lockEdge struct {
	from, to string
	pos      token.Position
}

// collectLockEdges walks every function in the file and records lock-order
// edges. Locks are named by receiver type plus field path (Queue.mu) so
// acquisitions unify across methods; locks rooted at locals or parameters
// are function-scoped (resolveNetlist:mu) — they cannot participate in
// cross-function cycles but still order against package locks held around
// them.
func collectLockEdges(fset *token.FileSet, file *ast.File) []lockEdge {
	var edges []lockEdge
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// Resolve identifier -> type name from the signature, so q.mu in a
		// Queue method and p.mu on a *Pool parameter both get type-qualified
		// lock names that unify across functions.
		typeOf := map[string]string{}
		if fn.Recv != nil && len(fn.Recv.List) == 1 {
			addFieldTypes(typeOf, fn.Recv.List[0])
		}
		if fn.Type.Params != nil {
			for _, f := range fn.Type.Params.List {
				addFieldTypes(typeOf, f)
			}
		}
		scope := fn.Name.Name
		edges = append(edges, lockWalk(fset, fn.Body, typeOf, scope, nil)...)
	}
	return edges
}

// addFieldTypes records name -> bare type name for a receiver or parameter
// field whose type is T or *T with T a plain identifier.
func addFieldTypes(typeOf map[string]string, f *ast.Field) {
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return
	}
	for _, name := range f.Names {
		typeOf[name.Name] = id.Name
	}
}

// lockWalk traverses stmts in source order tracking the held-lock set.
// Function literals restart with an empty set: their bodies run on other
// goroutines (or later), not under the spawner's locks.
func lockWalk(fset *token.FileSet, body *ast.BlockStmt, typeOf map[string]string, scope string, held []string) []lockEdge {
	var edges []lockEdge
	lockName := func(sel ast.Expr) string {
		chain := exprName(sel)
		if chain == "" {
			return ""
		}
		root := chain
		if i := strings.IndexByte(chain, '.'); i >= 0 {
			root = chain[:i]
		}
		if t, ok := typeOf[root]; ok {
			return t + strings.TrimPrefix(chain, root)
		}
		// Locals and captures stay function-scoped: they cannot deadlock
		// against another function's instance of the same variable.
		return scope + ":" + chain
	}
	acquire := func(name string, pos token.Pos) {
		for _, h := range held {
			if h == name {
				edges = append(edges, lockEdge{from: h, to: name, pos: fset.Position(pos)})
				return // self-edge recorded once; do not double-hold
			}
		}
		for _, h := range held {
			edges = append(edges, lockEdge{from: h, to: name, pos: fset.Position(pos)})
		}
		held = append(held, name)
	}
	release := func(name string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == name {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			inner := map[string]string{}
			for k, t := range typeOf {
				inner[k] = t
			}
			if v.Type.Params != nil {
				for _, f := range v.Type.Params.List {
					addFieldTypes(inner, f)
				}
			}
			edges = append(edges, lockWalk(fset, v.Body, inner, scope, nil)...)
			return false
		case *ast.DeferStmt:
			// defer x.mu.Unlock() keeps the lock held for the rest of the
			// function — exactly the window later acquisitions order against.
			return false
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if name := lockName(sel.X); name != "" {
					acquire(name, v.Pos())
				}
			case "Unlock", "RUnlock":
				if name := lockName(sel.X); name != "" {
					release(name)
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return edges
}

// reportLockCycles runs cycle detection over one package's accumulated
// edges and reports each cycle once, anchored at the lexically smallest
// participating edge.
func reportLockCycles(edges []lockEdge) []finding {
	adj := map[string][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []finding
	seen := map[string]bool{}
	// DFS from each node; a back edge to a node on the current path closes
	// a cycle.
	for _, start := range nodes {
		var path []string
		onPath := map[string]bool{}
		var dfs func(n string) bool
		dfs = func(n string) bool {
			path = append(path, n)
			onPath[n] = true
			defer func() { onPath[n] = false; path = path[:len(path)-1] }()
			for _, e := range adj[n] {
				if e.to == start && len(path) > 0 {
					cyc := append(append([]string(nil), path...), start)
					key := canonicalCycle(cyc)
					if !seen[key] {
						seen[key] = true
						out = append(out, finding{
							analyzer: "lockorder",
							pos:      e.pos,
							msg: fmt.Sprintf("lock acquisition cycle %s: functions acquire these locks in conflicting orders (latent deadlock)",
								strings.Join(cyc, " -> ")),
						})
					}
					continue
				}
				if !onPath[e.to] {
					dfs(e.to)
				}
			}
			return false
		}
		dfs(start)
	}
	return out
}

// canonicalCycle rotates the cycle (last element duplicates the first) to
// start at its smallest node so each cycle dedupes regardless of the DFS
// entry point.
func canonicalCycle(cyc []string) string {
	body := cyc[:len(cyc)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}

// ------------------------------------------------------------- ctxpropagate --

// checkCtxPropagate flags context.Background()/context.TODO() calls inside
// any function (or closure) that has a context.Context parameter in scope.
func checkCtxPropagate(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	// ctxDepth > 0 while inside at least one function with a ctx parameter.
	var walk func(n ast.Node, ctxInScope bool, nilGuard bool)
	walk = func(n ast.Node, ctxInScope bool, nilGuard bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.FuncDecl:
			if v.Body != nil {
				walk(v.Body, hasCtxParam(v.Type), false)
			}
			return
		case *ast.FuncLit:
			// A closure with its own ctx parameter rebinds the rule; one
			// without inherits the enclosing scope's.
			walk(v.Body, hasCtxParam(v.Type) || ctxInScope, nilGuard)
			return
		case *ast.IfStmt:
			// `if ctx == nil { ctx = context.Background() }` is the
			// defaulting idiom, not a propagation break.
			guard := nilGuard || isNilCompare(v.Cond)
			walk(v.Cond, ctxInScope, nilGuard)
			walk(v.Body, ctxInScope, guard)
			if v.Else != nil {
				walk(v.Else, ctxInScope, nilGuard)
			}
			return
		case *ast.CallExpr:
			if ctxInScope && !nilGuard &&
				(isPkgCall(v, "context", "Background") || isPkgCall(v, "context", "TODO")) {
				out = append(out, finding{
					analyzer: "ctxpropagate",
					pos:      fset.Position(v.Pos()),
					msg: fmt.Sprintf("context.%s() inside a function that receives a context.Context: derive from the parameter or the caller's cancellation is lost",
						v.Fun.(*ast.SelectorExpr).Sel.Name),
				})
			}
		}
		// Generic descent preserving flags.
		for _, child := range childNodes(n) {
			walk(child, ctxInScope, nilGuard)
		}
	}
	for _, decl := range file.Decls {
		walk(decl, false, false)
	}
	return out
}

func hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if exprName(f.Type) == "context.Context" {
			return true
		}
	}
	return false
}

func isNilCompare(e ast.Expr) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LOR || bin.Op == token.LAND {
		return isNilCompare(bin.X) || isNilCompare(bin.Y)
	}
	return bin.Op == token.EQL && (isNilIdent(bin.X) || isNilIdent(bin.Y))
}

// childNodes enumerates direct children for the generic descent above.
func childNodes(n ast.Node) []ast.Node {
	var kids []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			kids = append(kids, c)
		}
		return false
	})
	return kids
}

// ---------------------------------------------------------------- timeafter --

// checkTimeAfter flags time.After calls inside a select statement that is
// itself (transitively) inside a for/range loop: one garbage timer per
// iteration, alive until it fires. Function literals reset the loop context
// — a goroutine launched inside a loop gets its own accounting.
func checkTimeAfter(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	var walk func(n ast.Node, inFor, inSelect bool)
	walk = func(n ast.Node, inFor, inSelect bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			walk(v.Body, false, false)
			return
		case *ast.ForStmt:
			walk(v.Body, true, false)
			return
		case *ast.RangeStmt:
			walk(v.Body, true, false)
			return
		case *ast.SelectStmt:
			walk(v.Body, inFor, inFor)
			return
		case *ast.CallExpr:
			if inSelect && isPkgCall(v, "time", "After") {
				out = append(out, finding{
					analyzer: "timeafter",
					pos:      fset.Position(v.Pos()),
					msg:      "time.After in a select inside a loop allocates a timer per iteration (alive until it fires); hoist a time.Timer out of the loop and Reset it",
				})
			}
		}
		for _, child := range childNodes(n) {
			walk(child, inFor, inSelect)
		}
	}
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			walk(fn.Body, false, false)
		}
	}
	return out
}

// ------------------------------------------------------------------- goleak --

// checkGoLeak flags anonymous goroutine launches with no join signal: a
// body that neither calls a WaitGroup's Done, sends on a channel, nor
// closes one leaves the spawner nothing to wait on.
func checkGoLeak(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := goStmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // named launch: lifecycle-managed, out of scope
		}
		if hasJoinSignal(lit.Body) {
			return true
		}
		out = append(out, finding{
			analyzer: "goleak",
			pos:      fset.Position(goStmt.Pos()),
			msg:      "goroutine body has no join signal (WaitGroup Done, channel send, or close): nothing can wait for it, so shutdown cannot be clean",
		})
		return true
	})
	return out
}

// hasJoinSignal reports whether the goroutine body contains a completion
// signal observable by another goroutine: wg.Done(), a channel send, or a
// close(). Nested launches are not credited to the outer body.
func hasJoinSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				// wg.Done() signals; ctx.Done() merely subscribes — but as a
				// CallExpr operand of a receive it appears under UnaryExpr
				// or select cases, and crediting it is harmless: a body
				// looping on ctx.Done is lifecycle-bound, not orphaned.
				found = true
			}
		case *ast.GoStmt:
			_ = v
			return false
		}
		return !found
	})
	return found
}
