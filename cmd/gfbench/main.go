// Command gfbench regenerates the paper's evaluation — Tables I–IV and
// Figure 4 — printing measured numbers next to the published ones.
//
// Usage:
//
//	gfbench                      # everything at the paper's sizes
//	gfbench -table 1 -m 64,96    # Table I at selected sizes
//	gfbench -table 2             # Table II (Montgomery; the slow one)
//	gfbench -figure4 fig4.csv    # Figure 4 per-bit runtimes as CSV
//	gfbench -table 4 -m233 33    # scaled-down Table IV at m=33
//
// Absolute runtimes are not comparable to the paper's C++ on a 2012 Xeon;
// the shapes (rankings, growth, anomalies) are what reproduce. See
// EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/galoisfield/gfre/internal/eval"
)

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.String("table", "all", "which table to run: 1, 2, 3, 4, none or all")
		sizes     = fs.String("m", "", "comma-separated bit widths (default: the paper's sizes)")
		m233      = fs.Int("m233", 233, "field size for Table IV / Figure 4 (233 = the paper's)")
		fig4      = fs.String("figure4", "", "write Figure 4 per-bit runtime series to this CSV file")
		noFig     = fs.Bool("skip-figure4", false, "skip Figure 4 when running everything")
		arch      = fs.Int("archcmp", 0, "also run the architecture-comparison extension at this field size (0 = off)")
		jsonOut   = fs.Bool("json", false, "emit tables as JSON instead of text")
		benchjson = fs.String("benchjson", "", "also write one machine-readable BENCH_<design>_m<M>.json (phase + per-bit breakdowns) per row into this directory")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); rows abort with a resource error past it")
		coneTO    = fs.Duration("cone-timeout", 0, "per-output-cone rewriting deadline (0 = none)")
		budget    = fs.Int("budget", 0, "per-cone term budget; cones abort with ErrBudgetExceeded past it (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	szs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	var ropts []eval.RunOption
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ropts = append(ropts, eval.WithContext(ctx))
	}
	if *coneTO > 0 {
		ropts = append(ropts, eval.WithConeDeadline(*coneTO))
	}
	if *budget > 0 {
		ropts = append(ropts, eval.WithBudget(*budget))
	}
	want := func(t string) bool { return *table == "all" || *table == t }
	emit := func(title string, rows []eval.Row) error {
		if *jsonOut {
			fmt.Fprintf(stdout, "// %s\n", title)
			if err := eval.WriteJSON(stdout, rows); err != nil {
				return err
			}
		} else {
			eval.WriteTable(stdout, title, rows)
			fmt.Fprintln(stdout)
		}
		if *benchjson != "" {
			if err := os.MkdirAll(*benchjson, 0o755); err != nil {
				return err
			}
			for _, r := range rows {
				path := filepath.Join(*benchjson, eval.BenchFileName(r))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				werr := eval.WriteBenchReport(f, r)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return werr
				}
				fmt.Fprintf(stderr, "benchjson: wrote %s\n", path)
			}
		}
		return nil
	}

	if want("1") {
		rows, err := eval.TableI(szs, ropts...)
		if err != nil {
			return err
		}
		if err := emit("Table I: Mastrovito multipliers, NIST-recommended P(x)", rows); err != nil {
			return err
		}
	}
	if want("2") {
		rows, err := eval.TableII(szs, ropts...)
		if err != nil {
			return err
		}
		if err := emit("Table II: Montgomery multipliers (flattened), NIST-recommended P(x)", rows); err != nil {
			return err
		}
	}
	if want("3") {
		use := szs
		if use == nil {
			use = eval.TableIIISizes
		}
		rows, err := eval.TableIII(use, ropts...)
		if err != nil {
			return err
		}
		if err := emit("Table III: synthesized (optimized + mapped) multipliers", rows); err != nil {
			return err
		}
	}
	if want("4") {
		rows, err := eval.TableIV(*m233, ropts...)
		if err != nil {
			return err
		}
		if err := emit(fmt.Sprintf("Table IV: GF(2^%d) Mastrovito, architecture-optimal P(x)", *m233), rows); err != nil {
			return err
		}
	}
	if *arch > 0 {
		rows, err := eval.ArchComparison(*arch, ropts...)
		if err != nil {
			return err
		}
		if err := emit(fmt.Sprintf("Extension: extraction cost across architectures, GF(2^%d)", *arch), rows); err != nil {
			return err
		}
	}
	if (*table == "all" && !*noFig) || *fig4 != "" {
		series, err := eval.Figure4(*m233, ropts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 4: per-output-bit extraction runtime, GF(2^%d) (totals)\n", *m233)
		for _, s := range series {
			fmt.Fprintf(stdout, "  %-18s %-34v total %v\n", s.Arch, s.P, s.TotalRuntime())
		}
		if *fig4 != "" {
			f, err := os.Create(*fig4)
			if err != nil {
				return err
			}
			eval.WriteFigure4CSV(f, series)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  per-bit series written to %s\n", *fig4)
		}
	}
	return nil
}
