package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("64, 96,163")
	if err != nil || len(got) != 3 || got[0] != 64 || got[2] != 163 {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
	if got, err := parseSizes(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	if _, err := parseSizes("64,abc"); err == nil {
		t.Error("bad size should fail")
	}
}

func TestRunTableISmall(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "1", "-m", "64", "-skip-figure4"}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	for _, want := range []string{"Table I", "Mastrovito", "21814", "9.2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "2", "-m", "64", "-json", "-skip-figure4"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// First line is the title comment, the rest is a JSON array.
	body := out.String()
	idx := strings.IndexByte(body, '\n')
	var rows []map[string]interface{}
	if err := json.Unmarshal([]byte(body[idx:]), &rows); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(rows) != 1 || rows[0]["label"] != "Montgomery" || rows[0]["ok"] != true {
		t.Errorf("rows = %v", rows)
	}
}

func TestRunScaledTableIVAndFigure4(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "fig4.csv")
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "4", "-m233", "17", "-figure4", csv}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trinomial") || !strings.Contains(out.String(), "pentanomial") {
		t.Errorf("scaled Table IV missing rows:\n%s", out.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 18 || !strings.HasPrefix(lines[0], "bit,") {
		t.Errorf("CSV malformed: %d lines, header %q", len(lines), lines[0])
	}
}

func TestRunArchComparison(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "none", "-skip-figure4", "-archcmp", "16"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Karatsuba", "Montgomery", "DigitSerial"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("archcmp missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBenchJSON(t *testing.T) {
	// A nested directory that does not exist yet: -benchjson must create it
	// rather than fail at the first os.Create.
	dir := filepath.Join(t.TempDir(), "out", "bench")
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "1", "-m", "64", "-skip-figure4", "-benchjson", dir}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	path := filepath.Join(dir, "BENCH_mastrovito_m64.json")
	if !strings.Contains(errOut.String(), "BENCH_mastrovito_m64.json") {
		t.Errorf("no benchjson announcement:\n%s", errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Design         string  `json:"design"`
		M              int     `json:"m"`
		P              string  `json:"p"`
		OK             bool    `json:"ok"`
		RuntimeSeconds float64 `json:"runtime_seconds"`
		Phases         []struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		} `json:"phases"`
		Bits []struct {
			Bit   int `json:"bit"`
			Subst int `json:"subst"`
			Peak  int `json:"peak"`
		} `json:"bits"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad BENCH JSON: %v\n%s", err, data)
	}
	if rep.Design != "Mastrovito" || rep.M != 64 || !rep.OK || rep.RuntimeSeconds <= 0 {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if len(rep.Bits) != 64 {
		t.Errorf("bits = %d, want 64", len(rep.Bits))
	}
	phases := map[string]bool{}
	for _, ph := range rep.Phases {
		phases[ph.Name] = true
	}
	for _, want := range []string{"rewrite", "extract"} {
		if !phases[want] {
			t.Errorf("BENCH phases missing %q (have %v)", want, phases)
		}
	}
	if rep.Metrics.Counters["bits_done"] != 64 {
		t.Errorf("metrics.bits_done = %d", rep.Metrics.Counters["bits_done"])
	}
	// A pure AND/XOR Mastrovito matrix cancels nothing mod 2 (cancellations
	// come from the constants of NAND/XNOR cells), but every gate in each
	// cone is substituted.
	if rep.Metrics.Counters["substitutions"] == 0 {
		t.Error("substitution counter empty — instrumentation not wired into eval rows")
	}
}

func TestRunGovernedFlags(t *testing.T) {
	// Generous limits must not disturb a clean Table I row.
	var out, errOut bytes.Buffer
	err := run([]string{"-table", "1", "-m", "64", "-skip-figure4",
		"-timeout", "10m", "-cone-timeout", "5m", "-budget", "100000000"}, &out, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Errorf("governed run lost its output:\n%s", out.String())
	}

	// A starvation budget must abort the row with a typed resource error,
	// reported in the row rather than crashing the whole sweep.
	out.Reset()
	errOut.Reset()
	err = run([]string{"-table", "1", "-m", "64", "-json", "-skip-figure4",
		"-budget", "8"}, &out, &errOut)
	if err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	body := out.String()
	var rows []map[string]interface{}
	if err := json.Unmarshal([]byte(body[strings.IndexByte(body, '\n'):]), &rows); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(rows) != 1 || rows[0]["ok"] == true {
		t.Fatalf("starved row should not be ok: %v", rows)
	}
	if errText, _ := rows[0]["error"].(string); !strings.Contains(errText, "budget") {
		t.Errorf("row error %q does not mention the budget", errText)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-m", "notanumber"}, &buf, &buf); err == nil {
		t.Error("bad -m should fail")
	}
	if err := run([]string{"-table", "1", "-m", "100", "-skip-figure4"}, &buf, &buf); err == nil {
		t.Error("non-NIST size should fail")
	}
}
