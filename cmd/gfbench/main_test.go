package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("64, 96,163")
	if err != nil || len(got) != 3 || got[0] != 64 || got[2] != 163 {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
	if got, err := parseSizes(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	if _, err := parseSizes("64,abc"); err == nil {
		t.Error("bad size should fail")
	}
}

func TestRunTableISmall(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "1", "-m", "64", "-skip-figure4"}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	for _, want := range []string{"Table I", "Mastrovito", "21814", "9.2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "2", "-m", "64", "-json", "-skip-figure4"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// First line is the title comment, the rest is a JSON array.
	body := out.String()
	idx := strings.IndexByte(body, '\n')
	var rows []map[string]interface{}
	if err := json.Unmarshal([]byte(body[idx:]), &rows); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(rows) != 1 || rows[0]["label"] != "Montgomery" || rows[0]["ok"] != true {
		t.Errorf("rows = %v", rows)
	}
}

func TestRunScaledTableIVAndFigure4(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "fig4.csv")
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "4", "-m233", "17", "-figure4", csv}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trinomial") || !strings.Contains(out.String(), "pentanomial") {
		t.Errorf("scaled Table IV missing rows:\n%s", out.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 18 || !strings.HasPrefix(lines[0], "bit,") {
		t.Errorf("CSV malformed: %d lines, header %q", len(lines), lines[0])
	}
}

func TestRunArchComparison(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-table", "none", "-skip-figure4", "-archcmp", "16"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Karatsuba", "Montgomery", "DigitSerial"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("archcmp missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-m", "notanumber"}, &buf, &buf); err == nil {
		t.Error("bad -m should fail")
	}
	if err := run([]string{"-table", "1", "-m", "100", "-skip-figure4"}, &buf, &buf); err == nil {
		t.Error("non-NIST size should fail")
	}
}
