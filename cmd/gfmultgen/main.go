// Command gfmultgen generates gate-level GF(2^m) multiplier netlists in the
// architectures the paper evaluates (and two extras): tabular Mastrovito,
// matrix-form Mastrovito, flattened Montgomery, standalone MonPro,
// Karatsuba and digit-serial — optionally synthesized and technology-mapped,
// in equation, BLIF or structural Verilog format.
//
// Usage:
//
//	gfmultgen -m 64 -arch mastrovito -o mult64.eqn
//	gfmultgen -m 233 -p "x^233+x^159+1" -arch montgomery -synth -format blif -o m.blif
//	gfmultgen -m 32 -arch digitserial -digit 4 -format verilog -o ds32.v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	gfre "github.com/galoisfield/gfre"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfmultgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gfmultgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m       = fs.Int("m", 64, "field size (GF(2^m))")
		polyStr = fs.String("p", "", `irreducible polynomial, e.g. "x^64+x^21+x^19+x^4+1" (default: NIST/lowest-weight for m)`)
		arch    = fs.String("arch", "mastrovito", "architecture: mastrovito, matrix, montgomery, monpro, karatsuba, digitserial")
		digit   = fs.Int("digit", 4, "digit width for -arch digitserial")
		synth   = fs.Bool("synth", false, "run the synthesis pipeline (strash, XOR balance, mapping)")
		mapping = fs.String("map", "none", "technology mapping: none, fuse (NAND/NOR/XNOR fusion), nand (NAND-heavy), aoi (complex-cell fusion)")
		format  = fs.String("format", "eqn", "output format: eqn, blif or verilog")
		out     = fs.String("o", "", "output file (default stdout)")
		info    = fs.Bool("info", false, "print netlist statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p gfre.Poly
	var err error
	if *polyStr != "" {
		if p, err = gfre.ParsePoly(*polyStr); err != nil {
			return err
		}
		if p.Deg() != *m {
			return fmt.Errorf("polynomial %v has degree %d, want m=%d", p, p.Deg(), *m)
		}
	} else if p, err = gfre.DefaultPolynomial(*m); err != nil {
		return err
	}

	var n *gfre.Netlist
	switch *arch {
	case "mastrovito":
		n, err = gfre.NewMastrovito(*m, p)
	case "matrix":
		n, err = gfre.NewMastrovitoMatrix(*m, p)
	case "montgomery":
		n, err = gfre.NewMontgomery(*m, p)
	case "monpro":
		n, err = gfre.NewMonPro(*m, p)
	case "karatsuba":
		n, err = gfre.NewKaratsuba(*m, p)
	case "digitserial":
		n, err = gfre.NewDigitSerial(*m, p, *digit)
	default:
		err = fmt.Errorf("unknown architecture %q", *arch)
	}
	if err != nil {
		return err
	}

	if *synth {
		if n, err = gfre.Synthesize(n); err != nil {
			return err
		}
	}
	switch *mapping {
	case "none":
	case "fuse":
		n, err = gfre.TechMap(n, gfre.MapFuseInverters)
	case "nand":
		n, err = gfre.TechMap(n, gfre.MapNandHeavy)
	case "aoi":
		n, err = gfre.TechMap(n, gfre.MapFuseInverters)
		if err == nil {
			n, err = gfre.MapAOI(n)
		}
	default:
		err = fmt.Errorf("unknown mapping %q", *mapping)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "eqn":
		err = n.WriteEQN(w)
	case "blif":
		err = n.WriteBLIF(w)
	case "verilog":
		err = n.WriteVerilog(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	if *info {
		st := n.Stats()
		fmt.Fprintf(stderr, "%s: P(x)=%v, %d inputs, %d outputs, %d equations, depth %d\n",
			n.Name, p, st.Inputs, st.Outputs, st.Equations, st.Depth)
		for ty, cnt := range st.ByType {
			fmt.Fprintf(stderr, "  %-7v %d\n", ty, cnt)
		}
	}
	return nil
}
