package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gfre "github.com/galoisfield/gfre"
)

func TestRunAllArchitecturesRoundTrip(t *testing.T) {
	// Generate with every architecture and every format, read the result
	// back, and extract the polynomial from the generated file.
	for _, arch := range []string{"mastrovito", "matrix", "montgomery", "karatsuba", "digitserial"} {
		for _, format := range []string{"eqn", "blif", "verilog"} {
			path := filepath.Join(t.TempDir(), "out."+format)
			var out, errOut bytes.Buffer
			err := run([]string{"-m", "8", "-arch", arch, "-format", format, "-o", path},
				&out, &errOut)
			if err != nil {
				t.Fatalf("%s/%s: %v\n%s", arch, format, err, errOut.String())
			}
			n := readBack(t, path, format)
			ext, err := gfre.Extract(n, gfre.Options{})
			if err != nil {
				t.Fatalf("%s/%s: extract: %v", arch, format, err)
			}
			if ext.P.String() != "x^8+x^4+x^3+x+1" {
				t.Errorf("%s/%s: extracted %v", arch, format, ext.P)
			}
		}
	}
}

func readBack(t *testing.T, path, format string) *gfre.Netlist {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n *gfre.Netlist
	switch format {
	case "eqn":
		n, err = gfre.ReadEQN(f, "rt")
	case "blif":
		n, err = gfre.ReadBLIF(f)
	case "verilog":
		n, err = gfre.ReadVerilog(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunSynthAndMap(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-m", "8", "-arch", "matrix", "-synth", "-map", "nand", "-info"},
		&out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "INORDER") {
		t.Error("expected EQN output on stdout")
	}
	if !strings.Contains(errOut.String(), "equations") {
		t.Errorf("-info should print stats to stderr:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "NAND") {
		t.Errorf("-map nand should produce NAND cells:\n%s", errOut.String())
	}
}

func TestRunExplicitPolynomial(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-m", "4", "-p", "x^4+x^3+1", "-quietignored"}, &out, &errOut)
	if err == nil {
		t.Error("unknown flag should fail")
	}
	out.Reset()
	if err := run([]string{"-m", "4", "-p", "x^4+x^3+1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	n, err := gfre.ReadEQN(strings.NewReader(out.String()), "p1")
	if err != nil {
		t.Fatal(err)
	}
	ext, err := gfre.Extract(n, gfre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.P.String() != "x^4+x^3+1" {
		t.Errorf("extracted %v, want the explicit P1", ext.P)
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-m", "4", "-p", "x^5+x^2+1"},                     // degree mismatch
		{"-m", "4", "-p", "garbage"},                       // unparsable
		{"-m", "8", "-arch", "nosuch"},                     // unknown arch
		{"-m", "8", "-format", "pdf"},                      // unknown format
		{"-m", "8", "-map", "wat"},                         // unknown mapping
		{"-m", "8", "-arch", "digitserial", "-digit", "0"}, // bad digit
	}
	for i, args := range cases {
		if err := run(args, &buf, &buf); err == nil {
			t.Errorf("case %d (%v) should fail", i, args)
		}
	}
}
