package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	gfre "github.com/galoisfield/gfre"
)

// crashArgSep separates CLI arguments inside the helper's environment
// variable (NUL is not legal in env values; the unit separator is safe in
// any path the tests generate).
const crashArgSep = "\x1f"

// TestGfreCrashHelper is not a test: it is the subprocess body of the
// SIGKILL crash-recovery tests below, re-executing this test binary so the
// real gfre run() can be killed without building the CLI separately.
func TestGfreCrashHelper(t *testing.T) {
	if os.Getenv("GFRE_CRASH_HELPER") != "1" {
		t.Skip("helper process only")
	}
	args := strings.Split(os.Getenv("GFRE_CRASH_ARGS"), crashArgSep)
	err := run(args, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
	}
	os.Exit(exitCode(err))
}

// crashResume kills a checkpointed extraction mid-run with SIGKILL — no
// cleanup, no signal handler, the hard way a container OOM or power cut
// ends a process — then resumes from the snapshot and asserts the recovered
// P(x) is identical and strictly fewer cones were re-rewritten.
func crashResume(t *testing.T, m int) {
	t.Helper()
	want, err := gfre.DefaultPolynomial(m)
	if err != nil {
		t.Fatal(err)
	}
	netPath := writeNetlist(t, "mult.eqn", "mastrovito", m)

	var killed bool
	for attempt := 0; attempt < 5 && !killed; attempt++ {
		ckpt := t.TempDir()
		// -threads 1 serializes the cones, widening the window in which the
		// snapshot holds some-but-not-all of them.
		cmd := exec.Command(os.Args[0], "-test.run=TestGfreCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"GFRE_CRASH_HELPER=1",
			"GFRE_CRASH_ARGS="+strings.Join([]string{
				"-threads", "1", "-checkpoint", ckpt, netPath,
			}, crashArgSep))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Poll until the snapshot holds at least one completed cone but is
		// not yet complete, then SIGKILL. If the run finishes first the
		// attempt is wasted (the box was too fast); try again.
		deadline := time.After(30 * time.Second)
	poll:
		for {
			select {
			case <-exited:
				break poll
			case <-deadline:
				cmd.Process.Kill()
				<-exited
				t.Fatal("extraction did not checkpoint within 30s")
			default:
			}
			snap, err := gfre.LoadCheckpoint(ckpt)
			if err == nil && !snap.Complete && snap.DoneCones() >= 1 {
				cmd.Process.Kill() // SIGKILL: no handler runs, no sync happens
				<-exited
				killed = true
				break poll
			}
			time.Sleep(500 * time.Microsecond)
		}
		if !killed {
			continue
		}

		snap, err := gfre.LoadCheckpoint(ckpt)
		if err != nil {
			t.Fatalf("snapshot unreadable after SIGKILL: %v", err)
		}
		if snap.Complete {
			// Killed between the last cone and process exit; the resumed run
			// would reuse everything. Still a valid resume, keep going.
			t.Logf("killed after completion; %d cones reused", snap.DoneCones())
		}
		doneAtKill := snap.DoneCones()

		var out bytes.Buffer
		if err := run([]string{"-json", "-resume", "-checkpoint", ckpt, netPath}, &out, os.Stderr); err != nil {
			t.Fatalf("resume failed: %v", err)
		}
		var res struct {
			Polynomial  string `json:"polynomial"`
			Verified    bool   `json:"verified"`
			ReusedCones int    `json:"reused_cones"`
		}
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("resume output: %v\n%s", err, out.String())
		}
		if res.Polynomial != want.String() {
			t.Fatalf("resumed P(x) = %s, want %s", res.Polynomial, want)
		}
		if !res.Verified {
			t.Fatal("resumed extraction skipped verification")
		}
		if res.ReusedCones < doneAtKill || res.ReusedCones < 1 {
			t.Fatalf("resumed run reused %d cones, snapshot had %d done at kill time",
				res.ReusedCones, doneAtKill)
		}
		t.Logf("GF(2^%d): killed with %d/%d cones done, resume reused %d and recovered %s",
			m, doneAtKill, m, res.ReusedCones, res.Polynomial)
	}
	if !killed {
		t.Fatal("could not catch the extraction mid-run in 5 attempts")
	}
}

// TestCrashRecoveryGF64 is the CI smoke size: SIGKILL a GF(2^64) extraction
// mid-run, resume, and require the exact NIST P(x) back.
func TestCrashRecoveryGF64(t *testing.T) {
	crashResume(t, 64)
}

// TestCrashRecoveryGF163 is the acceptance-scale run on the NIST GF(2^163)
// pentanomial field.
func TestCrashRecoveryGF163(t *testing.T) {
	if testing.Short() {
		t.Skip("GF(2^163) crash recovery skipped in -short mode")
	}
	crashResume(t, 163)
}

// TestResumeRequiresCheckpointFlag pins the flag contract.
func TestResumeRequiresCheckpointFlag(t *testing.T) {
	err := run([]string{"-resume", "nofile.eqn"}, os.Stdout, os.Stderr)
	if !errors.Is(err, errUsage) {
		t.Fatalf("got %v, want usage error", err)
	}
}

// TestSignalCancellationChecksSnapshot sends SIGTERM (the graceful signal, a
// handler does run) and requires exit code 3 plus a synced, resumable
// snapshot — the documented interrupt semantics.
func TestSignalCancellationChecksSnapshot(t *testing.T) {
	m := 64
	netPath := writeNetlist(t, "mult.eqn", "mastrovito", m)

	var got3 bool
	for attempt := 0; attempt < 5 && !got3; attempt++ {
		ckpt := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestGfreCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"GFRE_CRASH_HELPER=1",
			"GFRE_CRASH_ARGS="+strings.Join([]string{
				"-threads", "1", "-checkpoint", ckpt, netPath,
			}, crashArgSep))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		deadline := time.After(30 * time.Second)
		terminated := false
	poll:
		for {
			select {
			case <-exited:
				break poll
			case <-deadline:
				cmd.Process.Kill()
				<-exited
				t.Fatal("extraction did not checkpoint within 30s")
			default:
			}
			snap, err := gfre.LoadCheckpoint(ckpt)
			if err == nil && !snap.Complete && snap.DoneCones() >= 1 {
				cmd.Process.Signal(os.Interrupt)
				terminated = true
				break poll
			}
			time.Sleep(500 * time.Microsecond)
		}
		if !terminated {
			continue // finished before we could interrupt; retry
		}
		werr := <-exited
		var ee *exec.ExitError
		if !errors.As(werr, &ee) {
			continue // interrupted after success: exit 0, too fast, retry
		}
		if code := ee.ExitCode(); code != exitResource {
			t.Fatalf("interrupted gfre exited %d, want %d", code, exitResource)
		}
		got3 = true

		// The handler synced the snapshot; resuming must succeed.
		var out bytes.Buffer
		if err := run([]string{"-quiet", "-resume", "-checkpoint", ckpt, netPath}, &out, os.Stderr); err != nil {
			t.Fatalf("resume after SIGINT failed: %v", err)
		}
		want, err := gfre.DefaultPolynomial(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(out.String()); got != want.String() {
			t.Fatalf("resumed P(x) = %s, want %s", got, want)
		}
	}
	if !got3 {
		t.Fatal("could not catch the extraction mid-run in 5 attempts")
	}
}
