// Command gfre reverse engineers the irreducible polynomial P(x) of a
// gate-level GF(2^m) multiplier netlist, with no knowledge of the multiplier
// architecture — the tool form of the paper's technique.
//
// Usage:
//
//	gfre [flags] netlist.eqn
//	gfre [flags] netlist.blif
//	gfre [flags] netlist.v
//
// The field size m is the number of primary outputs; the inputs must be the
// two m-bit operands (named a0..a<m-1>/b0..b<m-1> by default; see -a/-b, or
// -infer for scrambled netlists).
//
// Example:
//
//	gfmultgen -m 163 -arch montgomery -o mult.eqn
//	gfre -threads 16 -stats mult.eqn
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	gfre "github.com/galoisfield/gfre"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfre:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gfre", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format   = fs.String("format", "auto", "netlist format: eqn, blif, verilog or auto (by file extension)")
		threads  = fs.Int("threads", 16, "rewriting worker threads (the paper uses 16)")
		prefixA  = fs.String("a", "a", "input-name prefix of operand A")
		prefixB  = fs.String("b", "b", "input-name prefix of operand B")
		infer    = fs.Bool("infer", false, "infer operand partition, bit order and output order from the expressions (for scrambled/anonymized netlists)")
		noVerify = fs.Bool("no-verify", false, "skip the golden-model equivalence check")
		simulate = fs.Int("simulate", 0, "additionally cross-check with N*64 random simulation vectors")
		stats    = fs.Bool("stats", false, "print per-output-bit rewriting statistics")
		trace    = fs.String("trace", "", "print the Figure-3-style rewriting trace for this output (small designs)")
		quiet    = fs.Bool("quiet", false, "print only the recovered polynomial")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON")
		report   = fs.Bool("report", false, "print the full audit report instead of the short summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one netlist file argument")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	kind := *format
	if kind == "auto" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".blif":
			kind = "blif"
		case ".v", ".sv", ".vg":
			kind = "verilog"
		default:
			kind = "eqn"
		}
	}
	var n *gfre.Netlist
	switch kind {
	case "eqn":
		n, err = gfre.ReadEQN(f, filepath.Base(path))
	case "blif":
		n, err = gfre.ReadBLIF(f)
	case "verilog":
		n, err = gfre.ReadVerilog(f)
	default:
		err = fmt.Errorf("unknown format %q", kind)
	}
	if err != nil {
		return err
	}

	st := n.Stats()
	if !*quiet && !*jsonOut {
		fmt.Fprintf(stdout, "netlist: %s — %d inputs, %d outputs, %d equations, depth %d\n",
			n.Name, st.Inputs, st.Outputs, st.Equations, st.Depth)
	}

	if *trace != "" {
		br, err := gfre.TraceRewrite(n, *trace, stdout)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "final: %s = %s  (%d substitutions, peak %d terms)\n",
			*trace, gfre.FormatExpr(br.Expr, n), br.Substitutions, br.PeakTerms)
	}

	start := time.Now()
	var ext *gfre.Extraction
	var ports *gfre.InferredPorts
	if *infer {
		ext, ports, err = gfre.ExtractInferred(n, gfre.Options{
			Threads:    *threads,
			SkipVerify: *noVerify,
		})
	} else {
		ext, err = gfre.Extract(n, gfre.Options{
			Threads:    *threads,
			PrefixA:    *prefixA,
			PrefixB:    *prefixB,
			SkipVerify: *noVerify,
		})
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if ports != nil && !*quiet && !*jsonOut {
		fmt.Fprintf(stdout, "inferred ports:\n  A (LSB first): %s\n  B (LSB first): %s\n",
			portNames(n, ports.A), portNames(n, ports.B))
	}

	if *jsonOut {
		type bitJSON struct {
			Bit            int     `json:"bit"`
			Name           string  `json:"name"`
			ConeGates      int     `json:"cone_gates"`
			Substitutions  int     `json:"substitutions"`
			PeakTerms      int     `json:"peak_terms"`
			RuntimeSeconds float64 `json:"runtime_seconds"`
		}
		report := struct {
			Polynomial     string    `json:"polynomial"`
			M              int       `json:"m"`
			Verified       bool      `json:"verified"`
			RuntimeSeconds float64   `json:"runtime_seconds"`
			Threads        int       `json:"threads"`
			Equations      int       `json:"equations"`
			Bits           []bitJSON `json:"bits,omitempty"`
		}{
			Polynomial:     ext.P.String(),
			M:              ext.M,
			Verified:       ext.Verified,
			RuntimeSeconds: elapsed.Seconds(),
			Threads:        *threads,
			Equations:      st.Equations,
		}
		if *stats {
			for _, b := range ext.Rewrite.Bits {
				report.Bits = append(report.Bits, bitJSON{
					Bit: b.Bit, Name: b.Name, ConeGates: b.ConeGates,
					Substitutions: b.Substitutions, PeakTerms: b.PeakTerms,
					RuntimeSeconds: b.Runtime.Seconds(),
				})
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if *quiet {
		fmt.Fprintln(stdout, ext.P)
		return nil
	}
	if *report {
		fmt.Fprint(stdout, gfre.Report(n, ext))
		return nil
	}
	fmt.Fprintf(stdout, "irreducible polynomial: P(x) = %v\n", ext.P)
	fmt.Fprintf(stdout, "field:                  GF(2^%d)\n", ext.M)
	if ext.Verified {
		fmt.Fprintf(stdout, "verification:           PASS (netlist ≡ golden multiplier mod P)\n")
	} else {
		fmt.Fprintf(stdout, "verification:           skipped\n")
	}
	fmt.Fprintf(stdout, "extraction time:        %v in %d threads\n", elapsed.Round(time.Millisecond), *threads)
	fmt.Fprintf(stdout, "peak expression terms:  %d\n", ext.Rewrite.PeakTerms())

	if *simulate > 0 {
		if err := gfre.SimulationCrossCheck(n, ext, *simulate, time.Now().UnixNano()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "simulation cross-check: PASS (%d random vectors)\n", *simulate*64)
	}

	if *stats {
		fmt.Fprintln(stdout, "\nper-output-bit statistics:")
		fmt.Fprintf(stdout, "%6s %-8s %10s %8s %10s %12s\n", "bit", "name", "cone", "subst", "peak", "runtime")
		for _, b := range ext.Rewrite.Bits {
			fmt.Fprintf(stdout, "%6d %-8s %10d %8d %10d %12v\n",
				b.Bit, b.Name, b.ConeGates, b.Substitutions, b.PeakTerms, b.Runtime.Round(time.Microsecond))
		}
	}
	return nil
}

func portNames(n *gfre.Netlist, ids []int) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = n.NameOf(id)
	}
	return strings.Join(names, " ")
}
