// Command gfre reverse engineers the irreducible polynomial P(x) of a
// gate-level GF(2^m) multiplier netlist, with no knowledge of the multiplier
// architecture — the tool form of the paper's technique.
//
// Usage:
//
//	gfre [flags] netlist.eqn
//	gfre [flags] netlist.blif
//	gfre [flags] netlist.v
//
// The field size m is the number of primary outputs; the inputs must be the
// two m-bit operands (named a0..a<m-1>/b0..b<m-1> by default; see -a/-b, or
// -infer for scrambled netlists).
//
// Example:
//
//	gfmultgen -m 163 -arch montgomery -o mult.eqn
//	gfre -threads 16 -stats mult.eqn
//
// Extraction can be resource-governed (-budget, -cone-timeout, -timeout)
// and fault-tolerant (-tolerate, -diagnose); the exit code then classifies
// the failure — see the table in -h.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: profile endpoints on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	gfre "github.com/galoisfield/gfre"
)

// Exit codes, so scripted callers can tell failure classes apart without
// parsing stderr. Documented in -h.
const (
	exitOK       = 0 // P(x) recovered (and verified unless -no-verify)
	exitInternal = 1 // I/O errors, bad ports, anything unclassified
	exitUsage    = 2 // bad flags / arguments, malformed netlist
	exitResource = 3 // term budget, cone deadline, run timeout, or SIGINT/SIGTERM
	exitMismatch = 4 // netlist ≢ golden model, or consensus ambiguous
)

// errUsage tags command-line mistakes (it plays the role netlist.ErrParse
// plays for malformed input files).
var errUsage = errors.New("usage error")

// exitCode classifies err into the documented exit codes with errors.Is,
// so wrapped and aggregated errors (e.g. ErrTooManyFailures wrapping a
// BudgetError) land in the right class.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errUsage), errors.Is(err, flag.ErrHelp), errors.Is(err, gfre.ErrParse),
		errors.Is(err, gfre.ErrLintFindings):
		return exitUsage
	case errors.Is(err, gfre.ErrBudgetExceeded), errors.Is(err, gfre.ErrConeTimeout),
		errors.Is(err, gfre.ErrTooManyFailures),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitResource
	case errors.Is(err, gfre.ErrMismatch), errors.Is(err, gfre.ErrConsensus):
		return exitMismatch
	default:
		return exitInternal
	}
}

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "gfre:", err)
	}
	os.Exit(exitCode(err))
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("gfre", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format    = fs.String("format", "auto", "netlist format: eqn, blif, verilog or auto (by file extension)")
		threads   = fs.Int("threads", 0, "rewriting worker threads; 0 = auto (GOMAXPROCS). The paper's experiments use 16")
		prefixA   = fs.String("a", "a", "input-name prefix of operand A")
		prefixB   = fs.String("b", "b", "input-name prefix of operand B")
		infer     = fs.Bool("infer", false, "infer operand partition, bit order and output order from the expressions (for scrambled/anonymized netlists)")
		noVerify  = fs.Bool("no-verify", false, "skip the golden-model equivalence check")
		simulate  = fs.Int("simulate", 0, "additionally cross-check with N*64 random simulation vectors")
		stats     = fs.Bool("stats", false, "print per-output-bit rewriting statistics")
		trace     = fs.String("trace", "", "print the Figure-3-style rewriting trace for this output (small designs)")
		quiet     = fs.Bool("quiet", false, "print only the recovered polynomial")
		jsonOut   = fs.Bool("json", false, "emit the result as JSON (includes the phase-timing breakdown)")
		report    = fs.Bool("report", false, "print the full audit report instead of the short summary")
		progress  = fs.Bool("progress", false, "live per-bit progress ticker on stderr")
		metrics   = fs.String("metrics", "", "stream telemetry events (phase spans, per-bit stats, heap samples) to this NDJSON file")
		pprofSrv  = fs.String("pprof", "", "serve net/http/pprof and expvar (incl. live gfre metrics) on this address, e.g. localhost:6060")
		traceTree = fs.Bool("trace-tree", false, "print the hierarchical span tree (phases with per-cone children) after extraction; with -json the tree rides in the report")

		timeout     = fs.Duration("timeout", 0, "abort the whole run after this long (exit code 3)")
		coneTimeout = fs.Duration("cone-timeout", 0, "abort any single output cone whose rewriting exceeds this wall time")
		budget      = fs.Int("budget", 0, "per-cone term budget: abort a cone when its expression holds more resident terms (guards against non-multiplier blowup)")
		tolerate    = fs.Int("tolerate", 0, "fault-tolerant extraction: recover P(x) by consensus despite up to K failed or tampered output cones")
		diagnose    = fs.Bool("diagnose", false, "print the fault diagnosis (per-bit verdicts, ranked suspect gates) even when -tolerate is 0")

		checkpointDir = fs.String("checkpoint", "", "persist per-cone progress crash-safely into this directory as the run proceeds")
		resume        = fs.Bool("resume", false, "resume from the snapshot in -checkpoint: completed cones are reused, only unfinished ones are re-rewritten")
		shardN        = fs.Int("shard", 0, "lease-based sharded extraction with N local workers: cones become independently failable leases with expiry, work stealing and an epoch fence")

		preflight = fs.Bool("preflight", true, "lint the netlist before rewriting: structural defects abort with exit code 2, and the cone-cost predictor fills -budget/-cone-timeout when unset")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gfre [flags] netlist.{eqn,blif,v}\n\nflags:\n")
		fs.PrintDefaults()
		fmt.Fprint(stderr, `
exit codes:
  0  success: P(x) recovered (and verified unless -no-verify)
  1  internal error
  2  usage error or malformed netlist
  3  resource-governance abort (-budget / -cone-timeout / -timeout tripped)
     or run interrupted by SIGINT/SIGTERM (with -checkpoint the snapshot is
     synced before exit, so gfre -resume continues where the run stopped)
  4  verification failure: netlist does not match the golden model, or the
     fault-tolerant consensus is ambiguous
`)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %w", errUsage, err)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("%w: expected exactly one netlist file argument", errUsage)
	}
	if *infer && (*tolerate > 0 || *diagnose) {
		return fmt.Errorf("%w: -infer cannot be combined with -tolerate/-diagnose (port inference needs every cone intact)", errUsage)
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("%w: -resume requires -checkpoint", errUsage)
	}
	if *checkpointDir != "" && *infer {
		return fmt.Errorf("%w: -checkpoint cannot be combined with -infer (inferred runs rewrite under unnamed ports, so snapshots cannot be bound to them)", errUsage)
	}
	if *shardN > 0 && *infer {
		return fmt.Errorf("%w: -shard cannot be combined with -infer (port inference rewrites under its own scheduler)", errUsage)
	}
	path := fs.Arg(0)

	// SIGINT/SIGTERM cancel the run cooperatively: in-flight cones stop at
	// the next substitution, the checkpoint (if any) is synced, buffered
	// telemetry is flushed, and the process exits with code 3.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Telemetry: any observability flag (or -json, whose output embeds the
	// phase breakdown) attaches a recorder; the nil recorder otherwise keeps
	// the pipeline uninstrumented.
	var rec *gfre.Recorder
	stopHeap := func() {}
	if *progress || *metrics != "" || *pprofSrv != "" || *jsonOut || *traceTree {
		var sinks []gfre.TelemetrySink
		if *progress {
			sinks = append(sinks, gfre.NewProgressSink(stderr))
		}
		if *metrics != "" {
			mf, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			defer mf.Close()
			sinks = append(sinks, gfre.NewNDJSONSink(mf))
		}
		rec = gfre.NewRecorder(sinks...)
		// Closing the recorder flushes every sink's buffer. Deferred (not
		// called inline at the end of the happy path) so that EVERY exit —
		// usage errors, parse failures, cancellation — drains the NDJSON
		// stream; a flush failure surfaces as the run's error when nothing
		// worse already has.
		defer func() {
			if cerr := rec.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		stopHeap = rec.StartHeapSampler(0)
		defer stopHeap() // idempotent; normally stopped before rec.Close above
	}
	if *pprofSrv != "" {
		if err := servePprof(*pprofSrv, rec, stderr); err != nil {
			return err
		}
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	kind := *format
	if kind == "auto" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".blif":
			kind = "blif"
		case ".v", ".sv", ".vg":
			kind = "verilog"
		default:
			kind = "eqn"
		}
	}
	parseSpan := rec.StartSpan("parse", nil)
	var n *gfre.Netlist
	switch kind {
	case "eqn":
		n, err = gfre.ReadEQN(f, filepath.Base(path))
	case "blif":
		n, err = gfre.ReadBLIF(f)
	case "verilog":
		n, err = gfre.ReadVerilog(f)
	default:
		err = fmt.Errorf("%w: unknown format %q", errUsage, kind)
	}
	parseSpan.End()
	if err != nil {
		return err
	}

	st := n.Stats()
	if !*quiet && !*jsonOut {
		fmt.Fprintf(stdout, "netlist: %s — %d inputs, %d outputs, %d equations, depth %d\n",
			n.Name, st.Inputs, st.Outputs, st.Equations, st.Depth)
	}

	if *trace != "" {
		br, err := gfre.TraceRewrite(n, *trace, stdout)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "final: %s = %s  (%d substitutions, peak %d terms)\n",
			*trace, gfre.FormatExpr(br.Expr, n), br.Substitutions, br.PeakTerms)
	}

	opts := gfre.Options{
		Threads:      *threads,
		PrefixA:      *prefixA,
		PrefixB:      *prefixB,
		SkipVerify:   *noVerify,
		Recorder:     rec,
		Ctx:          ctx,
		ConeDeadline: *coneTimeout,
		BudgetTerms:  *budget,
		Tolerate:     *tolerate,
		Diagnose:     *diagnose,
		Resume:       *resume,
		Preflight:    *preflight,
	}
	if *checkpointDir != "" {
		opts.Checkpoint = gfre.NewCheckpointManager(*checkpointDir, -1)
	}
	start := time.Now()
	var ext *gfre.Extraction
	var diag *gfre.Diagnosis
	var ports *gfre.InferredPorts
	if *infer {
		opts.PrefixA, opts.PrefixB = "", ""
		ext, ports, err = gfre.ExtractInferred(n, opts)
	} else if *shardN > 0 {
		ext, diag, _, err = gfre.ExtractSharded(n, opts, gfre.ShardOptions{Workers: *shardN})
	} else if *tolerate > 0 || *diagnose {
		ext, diag, err = gfre.ExtractDiagnose(n, opts)
	} else {
		ext, err = gfre.Extract(n, opts)
	}
	elapsed := time.Since(start)
	stopHeap() // final heap sample; the deferred rec.Close flushes the stream
	if err != nil {
		// The preflight findings explain *why* the netlist was rejected;
		// render them before the bare error line.
		if ext != nil && ext.Lint != nil && ext.Lint.HasErrors() && !*quiet && !*jsonOut {
			ext.Lint.WriteText(stdout)
		}
		// The diagnosis carries whatever was learned before the failure —
		// per-bit verdicts matter most exactly when extraction aborts.
		if diag != nil && !*quiet && !*jsonOut {
			writeDiagnosis(stdout, n, diag)
		}
		return err
	}
	if ports != nil && !*quiet && !*jsonOut {
		fmt.Fprintf(stdout, "inferred ports:\n  A (LSB first): %s\n  B (LSB first): %s\n",
			portNames(n, ports.A), portNames(n, ports.B))
	}

	if *jsonOut {
		type bitJSON struct {
			Bit            int     `json:"bit"`
			Name           string  `json:"name"`
			ConeGates      int     `json:"cone_gates"`
			Substitutions  int     `json:"substitutions"`
			PeakTerms      int     `json:"peak_terms"`
			Cancelled      int     `json:"cancelled"`
			RuntimeSeconds float64 `json:"runtime_seconds"`
		}
		type phaseJSON struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		}
		type lintJSON struct {
			Errors               int    `json:"errors"`
			Warnings             int    `json:"warnings"`
			Infos                int    `json:"infos"`
			Fingerprint          string `json:"fingerprint"`
			PredictedPeakTerms   int    `json:"predicted_peak_terms"`
			ActualPeakTerms      int    `json:"actual_peak_terms"`
			SuggestedBudgetTerms int    `json:"suggested_budget_terms"`
		}
		report := struct {
			Polynomial     string            `json:"polynomial"`
			M              int               `json:"m"`
			Verified       bool              `json:"verified"`
			RuntimeSeconds float64           `json:"runtime_seconds"`
			Threads        int               `json:"threads"`
			ReusedCones    int               `json:"reused_cones,omitempty"`
			Equations      int               `json:"equations"`
			Lint           *lintJSON         `json:"lint,omitempty"`
			Phases         []phaseJSON       `json:"phases,omitempty"`
			Bits           []bitJSON         `json:"bits,omitempty"`
			Trace          []*gfre.TraceNode `json:"trace,omitempty"`
			Diagnosis      *gfre.Diagnosis   `json:"diagnosis,omitempty"`
		}{
			Polynomial:     ext.P.String(),
			M:              ext.M,
			Verified:       ext.Verified,
			RuntimeSeconds: elapsed.Seconds(),
			Threads:        ext.Rewrite.Threads,
			ReusedCones:    ext.Rewrite.Reused,
			Equations:      st.Equations,
			Diagnosis:      diag,
		}
		// Lint block: findings tally plus predicted-vs-actual cone cost, so
		// the telemetry pipeline can track predictor accuracy over time.
		if l := ext.Lint; l != nil {
			counts := l.Counts()
			report.Lint = &lintJSON{
				Errors:               counts[gfre.LintError],
				Warnings:             counts[gfre.LintWarn],
				Infos:                counts[gfre.LintInfo],
				Fingerprint:          l.Fingerprint.Class,
				PredictedPeakTerms:   l.MaxPredictedPeak(),
				ActualPeakTerms:      ext.Rewrite.PeakTerms(),
				SuggestedBudgetTerms: l.SuggestedBudgetTerms,
			}
		}
		// Phase-timing breakdown from the recorder, so scripted runs get
		// the spans without parsing the NDJSON stream.
		for _, sp := range rec.Spans() {
			report.Phases = append(report.Phases, phaseJSON{Name: sp.Name, Seconds: sp.Duration.Seconds()})
		}
		if *traceTree {
			report.Trace = rec.TraceTree()
		}
		if *stats {
			for _, b := range ext.Rewrite.Bits {
				report.Bits = append(report.Bits, bitJSON{
					Bit: b.Bit, Name: b.Name, ConeGates: b.ConeGates,
					Substitutions: b.Substitutions, PeakTerms: b.PeakTerms,
					Cancelled:      b.Cancelled,
					RuntimeSeconds: b.Runtime.Seconds(),
				})
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if *quiet {
		fmt.Fprintln(stdout, ext.P)
		return nil
	}
	if *report {
		fmt.Fprint(stdout, gfre.Report(n, ext))
		return nil
	}
	fmt.Fprintf(stdout, "irreducible polynomial: P(x) = %v\n", ext.P)
	fmt.Fprintf(stdout, "field:                  GF(2^%d)\n", ext.M)
	if ext.Verified {
		fmt.Fprintf(stdout, "verification:           PASS (netlist ≡ golden multiplier mod P)\n")
	} else {
		fmt.Fprintf(stdout, "verification:           skipped\n")
	}
	fmt.Fprintf(stdout, "extraction time:        %v in %d threads\n", elapsed.Round(time.Millisecond), ext.Rewrite.Threads)
	if ext.Rewrite.Reused > 0 {
		fmt.Fprintf(stdout, "checkpoint resume:      %d of %d cones reused\n", ext.Rewrite.Reused, ext.M)
	}
	fmt.Fprintf(stdout, "peak expression terms:  %d\n", ext.Rewrite.PeakTerms())
	if l := ext.Lint; l != nil {
		counts := l.Counts()
		fmt.Fprintf(stdout, "preflight lint:         %d warning(s), %d info; %s architecture; predicted peak %d vs actual %d terms\n",
			counts[gfre.LintWarn], counts[gfre.LintInfo], l.Fingerprint.Class,
			l.MaxPredictedPeak(), ext.Rewrite.PeakTerms())
	}
	if diag != nil {
		writeDiagnosis(stdout, n, diag)
	}

	if *simulate > 0 {
		if err := gfre.SimulationCrossCheck(n, ext, *simulate, time.Now().UnixNano()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "simulation cross-check: PASS (%d random vectors)\n", *simulate*64)
	}

	if *traceTree {
		fmt.Fprintln(stdout, "\ntrace tree:")
		gfre.WriteTraceTree(stdout, rec.TraceTree())
	}

	if *stats {
		fmt.Fprintln(stdout, "\nper-output-bit statistics:")
		fmt.Fprintf(stdout, "%6s %-8s %10s %8s %10s %12s\n", "bit", "name", "cone", "subst", "peak", "runtime")
		for _, b := range ext.Rewrite.Bits {
			fmt.Fprintf(stdout, "%6d %-8s %10d %8d %10d %12v\n",
				b.Bit, b.Name, b.ConeGates, b.Substitutions, b.PeakTerms, b.Runtime.Round(time.Microsecond))
		}
	}
	return nil
}

// servePprof starts the observability HTTP endpoint: net/http/pprof and
// expvar on the default mux, plus a live snapshot of the run's metrics
// registry under the expvar name "gfre". It listens eagerly so a bad
// address fails fast, then serves in the background for the lifetime of
// the extraction.
func servePprof(addr string, rec *gfre.Recorder, stderr io.Writer) error {
	if expvar.Get("gfre") == nil { // expvar.Publish panics on re-registration
		expvar.Publish("gfre", expvar.Func(func() any { return rec.Snapshot() }))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "pprof:   http://%s/debug/pprof  (expvar metrics at /debug/vars)\n", ln.Addr())
	go http.Serve(ln, nil) //nolint:errcheck — lives until process exit
	return nil
}

// writeDiagnosis renders the fault-tolerance verdict: consensus outcome,
// every non-healthy bit, and the ranked suspect gates.
func writeDiagnosis(w io.Writer, n *gfre.Netlist, diag *gfre.Diagnosis) {
	fmt.Fprintf(w, "\nfault diagnosis (tolerance %d):\n", diag.Tolerate)
	switch {
	case diag.Faults == 0:
		fmt.Fprintf(w, "  all %d output cones healthy\n", len(diag.Bits))
	case diag.Recovered:
		fmt.Fprintf(w, "  P(x) recovered by consensus over %d faulty cone(s) (%d candidates tried)\n",
			diag.Faults, diag.CandidatesTried)
	default:
		fmt.Fprintf(w, "  consensus FAILED with %d faulty cone(s) (%d candidates tried)\n",
			diag.Faults, diag.CandidatesTried)
	}
	for _, bd := range diag.Bits {
		if bd.State == "ok" {
			continue
		}
		detail := bd.Detail
		if detail != "" {
			detail = " — " + detail
		}
		fmt.Fprintf(w, "  bit %3d (%s): %s%s\n", bd.Bit, bd.Name, bd.State, detail)
	}
	if len(diag.Suspects) > 0 {
		fmt.Fprintf(w, "  suspect gates (most likely first):\n")
		max := len(diag.Suspects)
		if max > 10 {
			max = 10
		}
		for _, s := range diag.Suspects[:max] {
			name := s.Name
			if name == "" {
				name = n.NameOf(s.Gate)
			}
			fmt.Fprintf(w, "    gate %5d %-12s correct-rate %.2f  structural %.2f  (%d tampered / %d clean cones)\n",
				s.Gate, name, s.CorrectRate, s.Structural, s.TamperedCones, s.CleanCones)
		}
		if len(diag.Suspects) > max {
			fmt.Fprintf(w, "    ... and %d more\n", len(diag.Suspects)-max)
		}
	}
}

func portNames(n *gfre.Netlist, ids []int) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = n.NameOf(id)
	}
	return strings.Join(names, " ")
}
