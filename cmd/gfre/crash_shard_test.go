package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	gfre "github.com/galoisfield/gfre"
)

// TestCrashRecoveryShardedGF64 is the distributed twin of the SIGKILL crash
// test: a lease-scheduled extraction (-shard) is killed mid-run — every live
// lease dies with the process — then re-executed with -resume. The
// checkpointed cones must seed the new pool's Prior, so the resumed run
// reuses them instead of re-leasing, and still recovers the exact NIST
// GF(2^64) polynomial.
func TestCrashRecoveryShardedGF64(t *testing.T) {
	m := 64
	want, err := gfre.DefaultPolynomial(m)
	if err != nil {
		t.Fatal(err)
	}
	netPath := writeNetlist(t, "mult.eqn", "mastrovito", m)

	var killed bool
	for attempt := 0; attempt < 5 && !killed; attempt++ {
		ckpt := t.TempDir()
		// Two shard workers with -threads 1 each: leases are in flight when
		// the process dies, which is exactly the state being tested.
		cmd := exec.Command(os.Args[0], "-test.run=TestGfreCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"GFRE_CRASH_HELPER=1",
			"GFRE_CRASH_ARGS="+strings.Join([]string{
				"-threads", "1", "-shard", "2", "-checkpoint", ckpt, netPath,
			}, crashArgSep))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		deadline := time.After(30 * time.Second)
	poll:
		for {
			select {
			case <-exited:
				break poll
			case <-deadline:
				cmd.Process.Kill()
				<-exited
				t.Fatal("sharded extraction did not checkpoint within 30s")
			default:
			}
			snap, err := gfre.LoadCheckpoint(ckpt)
			if err == nil && !snap.Complete && snap.DoneCones() >= 1 {
				cmd.Process.Kill() // SIGKILL mid-lease: no handler, no sync
				<-exited
				killed = true
				break poll
			}
			time.Sleep(500 * time.Microsecond)
		}
		if !killed {
			continue // the run beat the poller; retry
		}

		snap, err := gfre.LoadCheckpoint(ckpt)
		if err != nil {
			t.Fatalf("snapshot unreadable after SIGKILL: %v", err)
		}
		doneAtKill := snap.DoneCones()

		var out bytes.Buffer
		if err := run([]string{"-json", "-resume", "-shard", "2", "-checkpoint", ckpt, netPath},
			&out, os.Stderr); err != nil {
			t.Fatalf("sharded resume failed: %v", err)
		}
		var res struct {
			Polynomial  string `json:"polynomial"`
			Verified    bool   `json:"verified"`
			ReusedCones int    `json:"reused_cones"`
		}
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("resume output: %v\n%s", err, out.String())
		}
		if res.Polynomial != want.String() {
			t.Fatalf("resumed P(x) = %s, want %s", res.Polynomial, want)
		}
		if !res.Verified {
			t.Fatal("resumed sharded extraction skipped verification")
		}
		if res.ReusedCones < doneAtKill || res.ReusedCones < 1 {
			t.Fatalf("resumed run reused %d cones, snapshot had %d done at kill time",
				res.ReusedCones, doneAtKill)
		}
		t.Logf("GF(2^%d) sharded: killed with %d/%d cones done, resume reused %d and recovered %s",
			m, doneAtKill, m, res.ReusedCones, res.Polynomial)
	}
	if !killed {
		t.Fatal("could not catch the sharded extraction mid-run in 5 attempts")
	}
}
