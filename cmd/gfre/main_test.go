package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gfre "github.com/galoisfield/gfre"
)

// writeNetlist generates a small multiplier netlist file for CLI tests.
func writeNetlist(t *testing.T, name, arch string, m int) string {
	t.Helper()
	p, err := gfre.DefaultPolynomial(m)
	if err != nil {
		t.Fatal(err)
	}
	var n *gfre.Netlist
	switch arch {
	case "mastrovito":
		n, err = gfre.NewMastrovito(m, p)
	case "montgomery":
		n, err = gfre.NewMontgomery(m, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	switch filepath.Ext(name) {
	case ".blif":
		err = n.WriteBLIF(f)
	case ".v":
		err = n.WriteVerilog(f)
	default:
		err = n.WriteEQN(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasicExtraction(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	var out, errOut bytes.Buffer
	if err := run([]string{path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	for _, want := range []string{"x^8+x^4+x^3+x+1", "PASS", "GF(2^8)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuiet(t *testing.T) {
	path := writeNetlist(t, "m8.blif", "montgomery", 8)
	var out bytes.Buffer
	if err := run([]string{"-quiet", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "x^8+x^4+x^3+x+1" {
		t.Errorf("quiet output = %q", got)
	}
}

func TestRunJSONWithStats(t *testing.T) {
	path := writeNetlist(t, "m8.v", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-json", "-stats", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Polynomial string `json:"polynomial"`
		M          int    `json:"m"`
		Verified   bool   `json:"verified"`
		Bits       []struct {
			Name string `json:"name"`
		} `json:"bits"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Polynomial != "x^8+x^4+x^3+x+1" || rep.M != 8 || !rep.Verified || len(rep.Bits) != 8 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunTrace(t *testing.T) {
	path := writeNetlist(t, "m2.eqn", "mastrovito", 2)
	var out bytes.Buffer
	if err := run([]string{"-trace", "z1", "-quiet", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F0 = z1") {
		t.Errorf("trace missing:\n%s", out.String())
	}
}

func TestRunSimulateFlag(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-simulate", "2", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulation cross-check: PASS") {
		t.Errorf("missing cross-check line:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, &out); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"/nonexistent/file.eqn"}, &out, &out); err == nil {
		t.Error("missing file should fail")
	}
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	if err := run([]string{"-format", "bogus", path}, &out, &out); err == nil {
		t.Error("bad format should fail")
	}
	if err := run([]string{"-trace", "nosuch", path}, &out, &out); err == nil {
		t.Error("unknown trace output should fail")
	}
}

func TestRunReport(t *testing.T) {
	path := writeNetlist(t, "m8r.eqn", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-report", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"polynomial:", "pentanomial", "verified:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
