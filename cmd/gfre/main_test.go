package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gfre "github.com/galoisfield/gfre"
)

// writeNetlist generates a small multiplier netlist file for CLI tests.
func writeNetlist(t *testing.T, name, arch string, m int) string {
	t.Helper()
	p, err := gfre.DefaultPolynomial(m)
	if err != nil {
		t.Fatal(err)
	}
	var n *gfre.Netlist
	switch arch {
	case "mastrovito":
		n, err = gfre.NewMastrovito(m, p)
	case "montgomery":
		n, err = gfre.NewMontgomery(m, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	switch filepath.Ext(name) {
	case ".blif":
		err = n.WriteBLIF(f)
	case ".v":
		err = n.WriteVerilog(f)
	default:
		err = n.WriteEQN(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// writeFile dumps a netlist in EQN format for CLI tests.
func writeFile(t *testing.T, name string, n *gfre.Netlist) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := n.WriteEQN(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// trojanedMultiplier builds an m-bit matrix-Mastrovito multiplier with its
// middle XOR gate flipped to OR — a single-gate hardware trojan.
func trojanedMultiplier(t *testing.T, m int) *gfre.Netlist {
	t.Helper()
	p, err := gfre.DefaultPolynomial(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gfre.NewMastrovitoMatrix(m, p)
	if err != nil {
		t.Fatal(err)
	}
	nx := 0
	for id := 0; id < n.NumGates(); id++ {
		if n.Gate(id).Type == gfre.Xor {
			nx++
		}
	}
	out := gfre.NewNetlist(n.Name + "_troj")
	idmap := make([]int, n.NumGates())
	seen := 0
	for id := 0; id < n.NumGates(); id++ {
		g := n.Gate(id)
		var nid int
		if g.Type == gfre.Input {
			nid, err = out.AddInput(n.NameOf(id))
		} else {
			typ := g.Type
			if typ == gfre.Xor {
				if seen == nx/2 {
					typ = gfre.Or
				}
				seen++
			}
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = idmap[f]
			}
			nid, err = out.AddGate(typ, fanin...)
		}
		if err != nil {
			t.Fatal(err)
		}
		idmap[id] = nid
	}
	names := n.OutputNames()
	for i, oid := range n.Outputs() {
		if err := out.MarkOutput(names[i], idmap[oid]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// explodingNetlist builds an l-output circuit shaped like a multiplier
// (inputs a0../b0.., outputs z0..) whose last bit is z = Π(a_i⊕b_i): its
// rewriting has zero mod-2 cancellation and blows up to 2^l terms — the
// budget-abort testbed. The other bits are cheap a_i·b_i cones so port
// identification succeeds and the run reaches the rewriting phase.
func explodingNetlist(t *testing.T, l int) *gfre.Netlist {
	t.Helper()
	n := gfre.NewNetlist("explode")
	var sums, prods []int
	for i := 0; i < l; i++ {
		ai, err := n.AddInput(fmt.Sprintf("a%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bi, err := n.AddInput(fmt.Sprintf("b%d", i))
		if err != nil {
			t.Fatal(err)
		}
		x, err := n.AddGate(gfre.Xor, ai, bi)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, x)
		p, err := n.AddGate(gfre.And, ai, bi)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	for len(sums) > 1 {
		var next []int
		for i := 0; i+1 < len(sums); i += 2 {
			g, err := n.AddGate(gfre.And, sums[i], sums[i+1])
			if err != nil {
				t.Fatal(err)
			}
			next = append(next, g)
		}
		if len(sums)%2 == 1 {
			next = append(next, sums[len(sums)-1])
		}
		sums = next
	}
	for i := 0; i < l-1; i++ {
		if err := n.MarkOutput(fmt.Sprintf("z%d", i), prods[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.MarkOutput(fmt.Sprintf("z%d", l-1), sums[0]); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, exitOK},
		{"internal", errors.New("boom"), exitInternal},
		{"usage", fmt.Errorf("%w: no file", errUsage), exitUsage},
		{"parse", fmt.Errorf("read: %w", gfre.ErrParse), exitUsage},
		{"budget", fmt.Errorf("bit 3: %w", gfre.ErrBudgetExceeded), exitResource},
		{"cone-timeout", gfre.ErrConeTimeout, exitResource},
		{"too-many-failures", fmt.Errorf("%w: %w", gfre.ErrTooManyFailures, gfre.ErrBudgetExceeded), exitResource},
		{"run-timeout", context.DeadlineExceeded, exitResource},
		{"cancelled", context.Canceled, exitResource},
		{"mismatch", fmt.Errorf("verify: %w", gfre.ErrMismatch), exitMismatch},
		{"consensus", gfre.ErrConsensus, exitMismatch},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := exitCode(tt.err); got != tt.want {
				t.Errorf("exitCode(%v) = %d, want %d", tt.err, got, tt.want)
			}
		})
	}
}

func TestRunBudgetAbortExitsResource(t *testing.T) {
	path := writeFile(t, "explode.eqn", explodingNetlist(t, 14))
	var out, errOut bytes.Buffer
	err := run([]string{"-budget", "256", "-no-verify", path}, &out, &errOut)
	if !errors.Is(err, gfre.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if got := exitCode(err); got != exitResource {
		t.Errorf("exit code = %d, want %d", got, exitResource)
	}
}

func TestRunUsageExitCodes(t *testing.T) {
	path := writeNetlist(t, "m4.eqn", "mastrovito", 4)
	garbage := filepath.Join(t.TempDir(), "garbage.eqn")
	if err := os.WriteFile(garbage, []byte("NAME = ((((\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{},
		{"-format", "bogus", path},
		{"-infer", "-tolerate", "1", path},
		{garbage},
	} {
		var out bytes.Buffer
		err := run(args, &out, &out)
		if err == nil {
			t.Errorf("run(%v) succeeded, want usage/parse error", args)
			continue
		}
		if got := exitCode(err); got != exitUsage {
			t.Errorf("run(%v): exit code = %d (%v), want %d", args, got, err, exitUsage)
		}
	}
}

func TestRunMismatchExitsMismatch(t *testing.T) {
	path := writeFile(t, "troj.eqn", trojanedMultiplier(t, 8))
	var out bytes.Buffer
	err := run([]string{path}, &out, &out)
	if !errors.Is(err, gfre.ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	if got := exitCode(err); got != exitMismatch {
		t.Errorf("exit code = %d, want %d", got, exitMismatch)
	}
}

func TestRunToleratesTrojan(t *testing.T) {
	path := writeFile(t, "troj.eqn", trojanedMultiplier(t, 8))
	var out, errOut bytes.Buffer
	if err := run([]string{"-tolerate", "1", path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"x^8+x^4+x^3+x+1", "fault diagnosis", "tampered", "suspect gates"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunDiagnoseJSON(t *testing.T) {
	path := writeFile(t, "troj.eqn", trojanedMultiplier(t, 8))
	var out bytes.Buffer
	if err := run([]string{"-tolerate", "1", "-json", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Polynomial string `json:"polynomial"`
		Diagnosis  *struct {
			Recovered bool  `json:"recovered"`
			Faults    int   `json:"faults"`
			Tampered  []int `json:"tampered"`
			Suspects  []struct {
				Gate int `json:"gate"`
			} `json:"suspects"`
		} `json:"diagnosis"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Polynomial != "x^8+x^4+x^3+x+1" {
		t.Errorf("polynomial = %q", rep.Polynomial)
	}
	if rep.Diagnosis == nil || !rep.Diagnosis.Recovered || rep.Diagnosis.Faults != 1 ||
		len(rep.Diagnosis.Tampered) != 1 || len(rep.Diagnosis.Suspects) == 0 {
		t.Errorf("diagnosis = %+v", rep.Diagnosis)
	}
}

func TestRunBasicExtraction(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	var out, errOut bytes.Buffer
	if err := run([]string{path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	for _, want := range []string{"x^8+x^4+x^3+x+1", "PASS", "GF(2^8)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuiet(t *testing.T) {
	path := writeNetlist(t, "m8.blif", "montgomery", 8)
	var out bytes.Buffer
	if err := run([]string{"-quiet", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "x^8+x^4+x^3+x+1" {
		t.Errorf("quiet output = %q", got)
	}
}

func TestRunJSONWithStats(t *testing.T) {
	path := writeNetlist(t, "m8.v", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-json", "-stats", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Polynomial string `json:"polynomial"`
		M          int    `json:"m"`
		Verified   bool   `json:"verified"`
		Bits       []struct {
			Name string `json:"name"`
		} `json:"bits"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Polynomial != "x^8+x^4+x^3+x+1" || rep.M != 8 || !rep.Verified || len(rep.Bits) != 8 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunTrace(t *testing.T) {
	path := writeNetlist(t, "m2.eqn", "mastrovito", 2)
	var out bytes.Buffer
	if err := run([]string{"-trace", "z1", "-quiet", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F0 = z1") {
		t.Errorf("trace missing:\n%s", out.String())
	}
}

func TestRunSimulateFlag(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-simulate", "2", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulation cross-check: PASS") {
		t.Errorf("missing cross-check line:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, &out); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"/nonexistent/file.eqn"}, &out, &out); err == nil {
		t.Error("missing file should fail")
	}
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	if err := run([]string{"-format", "bogus", path}, &out, &out); err == nil {
		t.Error("bad format should fail")
	}
	if err := run([]string{"-trace", "nosuch", path}, &out, &out); err == nil {
		t.Error("unknown trace output should fail")
	}
}

func TestRunProgressAndMetrics(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "mastrovito", 8)
	ndjson := filepath.Join(t.TempDir(), "run.ndjson")
	var out, errOut bytes.Buffer
	if err := run([]string{"-progress", "-metrics", ndjson, path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	// The progress ticker lands on stderr, not stdout.
	for _, want := range []string{"[obs ", "rewrite: 8 bits", "[  8/  8]", "rewrite done in"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("progress output missing %q:\n%s", want, errOut.String())
		}
	}
	if strings.Contains(out.String(), "[obs ") {
		t.Error("progress ticker leaked onto stdout")
	}

	// The metrics file must be valid NDJSON with the acceptance shape:
	// phase spans plus one start/finish pair per output bit.
	data, err := os.ReadFile(ndjson)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	spans := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			TS   float64          `json:"ts"`
			Ev   string           `json:"ev"`
			Name string           `json:"name"`
			V    map[string]int64 `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		counts[ev.Ev]++
		if ev.Ev == "span_end" {
			spans[ev.Name] = true
		}
	}
	if counts["bit_start"] != 8 || counts["bit_finish"] != 8 {
		t.Errorf("bit events %v, want 8 start + 8 finish", counts)
	}
	if counts["heap"] == 0 {
		t.Errorf("no heap samples in %v", counts)
	}
	for _, phase := range []string{"parse", "cone-sort", "rewrite", "extract", "golden-model", "verify"} {
		if !spans[phase] {
			t.Errorf("phase span %q missing from event stream (have %v)", phase, spans)
		}
	}
}

func TestRunJSONIncludesPhases(t *testing.T) {
	path := writeNetlist(t, "m8.eqn", "montgomery", 8)
	var out, errOut bytes.Buffer
	if err := run([]string{"-json", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Threads int `json:"threads"`
		Phases  []struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Threads <= 0 {
		t.Errorf("threads = %d; the auto default must report the actual worker count", rep.Threads)
	}
	got := map[string]bool{}
	for _, ph := range rep.Phases {
		if ph.Seconds < 0 {
			t.Errorf("phase %q has negative duration", ph.Name)
		}
		got[ph.Name] = true
	}
	for _, phase := range []string{"parse", "rewrite", "extract", "golden-model", "verify"} {
		if !got[phase] {
			t.Errorf("JSON phases missing %q (have %v)", phase, got)
		}
	}
}

func TestRunPprofServer(t *testing.T) {
	path := writeNetlist(t, "m4.eqn", "mastrovito", 4)
	var out, errOut bytes.Buffer
	if err := run([]string{"-pprof", "127.0.0.1:0", "-quiet", path}, &out, &errOut); err != nil {
		t.Fatalf("%v\n%s", err, errOut.String())
	}
	if !strings.Contains(errOut.String(), "/debug/pprof") {
		t.Errorf("pprof address line missing:\n%s", errOut.String())
	}
	// A bad listen address must fail fast.
	if err := run([]string{"-pprof", "256.256.256.256:0", "-quiet", path}, &out, &errOut); err == nil {
		t.Error("unlistenable pprof address should fail")
	}
}

func TestRunReport(t *testing.T) {
	path := writeNetlist(t, "m8r.eqn", "mastrovito", 8)
	var out bytes.Buffer
	if err := run([]string{"-report", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"polynomial:", "pentanomial", "verified:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestMetricsFlushedOnErrorExit audits the obs flush contract end to end:
// even when extraction fails (here a budget abort), every NDJSON record
// emitted before the failure must be on disk — the deferred Recorder.Close
// in run() is what drains the sink's buffer on error paths.
func TestMetricsFlushedOnErrorExit(t *testing.T) {
	path := writeFile(t, "explode.eqn", explodingNetlist(t, 14))
	ndjson := filepath.Join(t.TempDir(), "fail.ndjson")
	var out, errOut bytes.Buffer
	err := run([]string{"-budget", "256", "-no-verify", "-metrics", ndjson, path}, &out, &errOut)
	if !errors.Is(err, gfre.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	data, err := os.ReadFile(ndjson)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("failed run left an empty metrics file — buffered records were lost")
	}
	sawParse := false
	for _, line := range lines {
		var ev struct {
			Ev   string `json:"ev"`
			Name string `json:"name"`
		}
		if jerr := json.Unmarshal([]byte(line), &ev); jerr != nil {
			t.Fatalf("truncated or corrupt NDJSON line %q: %v", line, jerr)
		}
		if ev.Ev == "span_end" && ev.Name == "parse" {
			sawParse = true
		}
	}
	if !sawParse {
		t.Fatal("metrics from before the failure (parse span) did not survive the error exit")
	}
}
